//! Diagnostics: stable lint codes, severities, and rendering with
//! disassembly context.
//!
//! Every finding a pass emits is a [`Diagnostic`] carrying a stable
//! [`LintCode`] (so CI filters and suppression lists survive message-text
//! changes), the offending pc, and an optional disassembly snippet around
//! the instruction.

use nvp_isa::Program;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: analysis facts (e.g. backup live-set sizes).
    Info,
    /// Likely defect: the program may silently corrupt results.
    Warning,
    /// Definite contract violation: the program is unsafe to approximate.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Stable lint codes, one per distinct finding class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintCode {
    /// `NVP-E001`: a branch condition reads an approximate register.
    BranchOnApprox,
    /// `NVP-E002`: an effective address is computed from an approximate
    /// register.
    AddressFromApprox,
    /// `NVP-E003`: an approximate value is stored outside the declared
    /// approximable region.
    StoreOutsideRegion,
    /// `NVP-E004`: at the kernel's declared minimum bitwidth a branch
    /// operand or indirect base can deviate from the exact run (control
    /// flow or addressing is not approximation-safe).
    ApproxUnsafeAddressOrBranch,
    /// `NVP-E005`: a branch operand or indirect base may stem from
    /// concrete `i32` wraparound — unsafe at every bitwidth.
    ExactValueOverflow,
    /// `NVP-W001`: a non-idempotent write inside a roll-forward region
    /// (write-after-read of the same NV location).
    WarHazard,
    /// `NVP-W002`: a register in the resume loop-variable mask is never
    /// read — its backed-up value can never influence resume matching.
    DeadResumeReg,
    /// `NVP-W003`: the kernel's declared minimum bitwidth is provably
    /// over-conservative — a lower floor is statically safe.
    OverConservativeBits,
    /// `NVP-E006`: a checkpoint-to-checkpoint region's worst-case energy
    /// exceeds the usable capacitor energy at every governor setting —
    /// the region can provably never complete (livelock).
    RegionLivelock,
    /// `NVP-W004`: a loop's trip count could not be bounded, so the WCEC
    /// certificate is unbounded along paths through it.
    UnboundedLoop,
    /// `NVP-I001`: backup live-set report at a resume point.
    BackupLiveSet,
    /// `NVP-I002`: WCEC headroom report — worst region energy vs. the
    /// usable capacitor budget at the declared operating floor.
    WcecHeadroom,
    /// `NVP-E007`: a checkpoint-to-checkpoint region is not provably
    /// re-executable under its `live ∩ dirty` backup mask (a WAR hazard
    /// survives the dirty-set restriction).
    DirtyNotReexecutable,
    /// `NVP-W005`: no checkpoint placement is simultaneously
    /// re-executable and WCEC-feasible at some governor bitwidth.
    NoFeasiblePlacement,
    /// `NVP-I003`: the synthesized checkpoint placement saves a
    /// significant fraction of backup energy vs. the declared placement.
    PlacementSavings,
}

impl LintCode {
    /// Every lint code, in legend order (errors, warnings, infos).
    pub const ALL: [LintCode; 15] = [
        LintCode::BranchOnApprox,
        LintCode::AddressFromApprox,
        LintCode::StoreOutsideRegion,
        LintCode::ApproxUnsafeAddressOrBranch,
        LintCode::ExactValueOverflow,
        LintCode::RegionLivelock,
        LintCode::DirtyNotReexecutable,
        LintCode::WarHazard,
        LintCode::DeadResumeReg,
        LintCode::OverConservativeBits,
        LintCode::UnboundedLoop,
        LintCode::NoFeasiblePlacement,
        LintCode::BackupLiveSet,
        LintCode::WcecHeadroom,
        LintCode::PlacementSavings,
    ];

    /// The stable code string (`NVP-E001`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::BranchOnApprox => "NVP-E001",
            LintCode::AddressFromApprox => "NVP-E002",
            LintCode::StoreOutsideRegion => "NVP-E003",
            LintCode::ApproxUnsafeAddressOrBranch => "NVP-E004",
            LintCode::ExactValueOverflow => "NVP-E005",
            LintCode::RegionLivelock => "NVP-E006",
            LintCode::WarHazard => "NVP-W001",
            LintCode::DeadResumeReg => "NVP-W002",
            LintCode::OverConservativeBits => "NVP-W003",
            LintCode::UnboundedLoop => "NVP-W004",
            LintCode::BackupLiveSet => "NVP-I001",
            LintCode::WcecHeadroom => "NVP-I002",
            LintCode::DirtyNotReexecutable => "NVP-E007",
            LintCode::NoFeasiblePlacement => "NVP-W005",
            LintCode::PlacementSavings => "NVP-I003",
        }
    }

    /// One-line legend description.
    pub fn description(self) -> &'static str {
        match self {
            LintCode::BranchOnApprox => "branch condition reads an approximate register",
            LintCode::AddressFromApprox => {
                "effective address computed from an approximate register"
            }
            LintCode::StoreOutsideRegion => "approximate store outside the declared region",
            LintCode::ApproxUnsafeAddressOrBranch => {
                "control flow or addressing deviates at the declared bit floor"
            }
            LintCode::ExactValueOverflow => {
                "possible exact-value wraparound reaches a branch/address"
            }
            LintCode::RegionLivelock => {
                "region's cheapest traversal exceeds the capacitor at every setting"
            }
            LintCode::WarHazard => "non-idempotent write inside a roll-forward region",
            LintCode::DeadResumeReg => "resume loop-variable register is never read",
            LintCode::OverConservativeBits => "declared bit floor is provably over-conservative",
            LintCode::UnboundedLoop => "loop trip count could not be bounded",
            LintCode::BackupLiveSet => "backup live-set report at a resume point",
            LintCode::WcecHeadroom => "WCEC headroom vs. the usable capacitor budget",
            LintCode::DirtyNotReexecutable => {
                "region not provably re-executable under its live∩dirty mask"
            }
            LintCode::NoFeasiblePlacement => {
                "no re-executable, WCEC-feasible checkpoint placement at some bitwidth"
            }
            LintCode::PlacementSavings => {
                "synthesized placement saves significant backup energy vs. declared"
            }
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::BranchOnApprox
            | LintCode::AddressFromApprox
            | LintCode::StoreOutsideRegion
            | LintCode::ApproxUnsafeAddressOrBranch
            | LintCode::ExactValueOverflow
            | LintCode::RegionLivelock
            | LintCode::DirtyNotReexecutable => Severity::Error,
            LintCode::WarHazard
            | LintCode::DeadResumeReg
            | LintCode::OverConservativeBits
            | LintCode::UnboundedLoop
            | LintCode::NoFeasiblePlacement => Severity::Warning,
            LintCode::BackupLiveSet | LintCode::WcecHeadroom | LintCode::PlacementSavings => {
                Severity::Info
            }
        }
    }
}

/// Renders the shared lint-code legend for a report mode.
///
/// Every `nvp-lint` mode (default, `--bitwidth`, `--energy`) prints the
/// legend for the codes it can emit through this one helper, so the
/// formatting cannot drift between modes: one `  CODE  severity  text`
/// line per code, in [`LintCode::ALL`] order.
pub fn render_legend(codes: &[LintCode]) -> String {
    let mut out = String::from("legend:\n");
    for code in LintCode::ALL {
        if codes.contains(&code) {
            out.push_str(&format!(
                "  {}  {:<7}  {}\n",
                code.as_str(),
                code.severity().to_string(),
                code.description()
            ));
        }
    }
    out
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A JSON value: the one serializer every `nvp-lint` report mode renders
/// its `--json` export through.
///
/// Object keys keep insertion order so reports are byte-stable across
/// runs, and [`Json::parse`] round-trips anything [`Json::render`]
/// produces — which is what lets CI (and tests) re-read a placement
/// certificate and check it structurally rather than by regex.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (e.g. an unbounded WCEC ceiling).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Integral values render without a decimal point.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A finite number, or `null` when `n` is NaN/infinite (unbounded).
    pub fn num(n: f64) -> Json {
        if n.is_finite() {
            Json::Num(n)
        } else {
            Json::Null
        }
    }

    /// Appends `key: value` to an object (panics on non-objects — a
    /// builder bug, not a data error).
    pub fn set(&mut self, key: impl Into<String>, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_json_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_json_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (full grammar minus `\u` escapes beyond
    /// what [`Json::render`] emits). Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            if bytes.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit} at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return String::from_utf8(out).map_err(|e| e.to_string()),
            b'\\' => {
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 4;
                        let c = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
            }
            b => out.push(b),
        }
    }
    Err("unterminated string".into())
}

/// One finding from one pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// Offending instruction index, if the finding is anchored to one.
    pub pc: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// Disassembly context lines (built by [`Diagnostic::with_context`]).
    pub context: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic anchored at `pc`.
    pub fn at(code: LintCode, pc: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            pc: Some(pc),
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Creates a program-level diagnostic (no single pc).
    pub fn program_level(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            pc: None,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// The severity of this diagnostic (derived from its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Attaches ±1 instructions of disassembly around the anchor pc,
    /// marking the offending line with `>`.
    pub fn with_context(mut self, program: &Program) -> Self {
        if let Some(pc) = self.pc {
            let lo = pc.saturating_sub(1);
            let hi = (pc + 2).min(program.len());
            for at in lo..hi {
                if let Some(i) = program.fetch(at) {
                    let marker = if at == pc { '>' } else { ' ' };
                    self.context.push(format!("{marker} {at:4} | {i}"));
                }
            }
        }
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity(), self.code, self.message)?;
        if let Some(pc) = self.pc {
            write!(f, " (pc {pc})")?;
        }
        for line in &self.context {
            write!(f, "\n    {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::{ProgramBuilder, Reg};

    #[test]
    fn codes_are_stable_and_severities_fixed() {
        assert_eq!(LintCode::BranchOnApprox.as_str(), "NVP-E001");
        assert_eq!(LintCode::ApproxUnsafeAddressOrBranch.as_str(), "NVP-E004");
        assert_eq!(LintCode::ExactValueOverflow.as_str(), "NVP-E005");
        assert_eq!(LintCode::WarHazard.as_str(), "NVP-W001");
        assert_eq!(LintCode::OverConservativeBits.as_str(), "NVP-W003");
        assert_eq!(LintCode::RegionLivelock.as_str(), "NVP-E006");
        assert_eq!(LintCode::UnboundedLoop.as_str(), "NVP-W004");
        assert_eq!(LintCode::WcecHeadroom.as_str(), "NVP-I002");
        assert_eq!(LintCode::DirtyNotReexecutable.as_str(), "NVP-E007");
        assert_eq!(LintCode::NoFeasiblePlacement.as_str(), "NVP-W005");
        assert_eq!(LintCode::PlacementSavings.as_str(), "NVP-I003");
        assert_eq!(LintCode::ExactValueOverflow.severity(), Severity::Error);
        assert_eq!(LintCode::RegionLivelock.severity(), Severity::Error);
        assert_eq!(LintCode::DirtyNotReexecutable.severity(), Severity::Error);
        assert_eq!(LintCode::OverConservativeBits.severity(), Severity::Warning);
        assert_eq!(LintCode::UnboundedLoop.severity(), Severity::Warning);
        assert_eq!(LintCode::NoFeasiblePlacement.severity(), Severity::Warning);
        assert_eq!(LintCode::BackupLiveSet.severity(), Severity::Info);
        assert_eq!(LintCode::WcecHeadroom.severity(), Severity::Info);
        assert_eq!(LintCode::PlacementSavings.severity(), Severity::Info);
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn all_covers_every_code_exactly_once() {
        let mut strs: Vec<&str> = LintCode::ALL.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), LintCode::ALL.len());
    }

    #[test]
    fn legend_renders_requested_codes_in_stable_order() {
        let s = render_legend(&[LintCode::WcecHeadroom, LintCode::RegionLivelock]);
        let e = s.find("NVP-E006").expect("E006 in legend");
        let i = s.find("NVP-I002").expect("I002 in legend");
        assert!(e < i, "errors precede infos:\n{s}");
        assert!(!s.contains("NVP-E001"));
        assert!(s.contains("error"));
        assert!(s.contains("cheapest traversal exceeds"), "{s}");
    }

    #[test]
    fn display_includes_code_pc_and_context() {
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 1).st(5, Reg(0)).halt();
        let p = b.build().unwrap();
        let d = Diagnostic::at(LintCode::WarHazard, 1, "write-after-read of [5]").with_context(&p);
        let s = d.to_string();
        assert!(s.contains("NVP-W001"), "{s}");
        assert!(s.contains("(pc 1)"), "{s}");
        assert!(s.contains(">    1 | st"), "{s}");
        assert!(s.contains("     0 | ldi"), "{s}");
    }

    #[test]
    fn program_level_has_no_pc() {
        let d = Diagnostic::program_level(LintCode::DeadResumeReg, "r9 never read");
        assert!(d.pc.is_none());
        assert!(!d.to_string().contains("pc"));
    }

    #[test]
    fn json_round_trips_structures() {
        let mut obj = Json::obj();
        obj.set("name", Json::str("fft"))
            .set("bits", Json::Num(8.0))
            .set("wcec_nj", Json::num(f64::INFINITY))
            .set("feasible", Json::Bool(true))
            .set("frac", Json::Num(0.8125))
            .set(
                "pcs",
                Json::Arr(vec![Json::Num(0.0), Json::Num(17.0), Json::Num(42.0)]),
            )
            .set("empty_arr", Json::Arr(vec![]))
            .set("empty_obj", Json::obj())
            .set("note", Json::str("quote \" slash \\ tab\tnewline\n"));
        let text = obj.render();
        let back = Json::parse(&text).expect("parse rendered JSON");
        assert_eq!(back, obj);
        // Re-render must be byte-identical (key order preserved).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn json_integral_numbers_render_without_decimal() {
        let text = Json::Num(42.0).render();
        assert_eq!(text, "42\n");
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert!(Json::Num(0.5).render().starts_with("0.5"));
    }

    #[test]
    fn json_accessors_navigate_objects() {
        let mut obj = Json::obj();
        obj.set("a", Json::Num(3.0))
            .set("b", Json::Arr(vec![Json::str("x")]));
        assert_eq!(obj.get("a").and_then(Json::as_num), Some(3.0));
        let arr = obj.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_str(), Some("x"));
        assert!(obj.get("missing").is_none());
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("42 tail").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
