//! Diagnostics: stable lint codes, severities, and rendering with
//! disassembly context.
//!
//! Every finding a pass emits is a [`Diagnostic`] carrying a stable
//! [`LintCode`] (so CI filters and suppression lists survive message-text
//! changes), the offending pc, and an optional disassembly snippet around
//! the instruction.

use nvp_isa::Program;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: analysis facts (e.g. backup live-set sizes).
    Info,
    /// Likely defect: the program may silently corrupt results.
    Warning,
    /// Definite contract violation: the program is unsafe to approximate.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Stable lint codes, one per distinct finding class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintCode {
    /// `NVP-E001`: a branch condition reads an approximate register.
    BranchOnApprox,
    /// `NVP-E002`: an effective address is computed from an approximate
    /// register.
    AddressFromApprox,
    /// `NVP-E003`: an approximate value is stored outside the declared
    /// approximable region.
    StoreOutsideRegion,
    /// `NVP-E004`: at the kernel's declared minimum bitwidth a branch
    /// operand or indirect base can deviate from the exact run (control
    /// flow or addressing is not approximation-safe).
    ApproxUnsafeAddressOrBranch,
    /// `NVP-E005`: a branch operand or indirect base may stem from
    /// concrete `i32` wraparound — unsafe at every bitwidth.
    ExactValueOverflow,
    /// `NVP-W001`: a non-idempotent write inside a roll-forward region
    /// (write-after-read of the same NV location).
    WarHazard,
    /// `NVP-W002`: a register in the resume loop-variable mask is never
    /// read — its backed-up value can never influence resume matching.
    DeadResumeReg,
    /// `NVP-W003`: the kernel's declared minimum bitwidth is provably
    /// over-conservative — a lower floor is statically safe.
    OverConservativeBits,
    /// `NVP-E006`: a checkpoint-to-checkpoint region's worst-case energy
    /// exceeds the usable capacitor energy at every governor setting —
    /// the region can provably never complete (livelock).
    RegionLivelock,
    /// `NVP-W004`: a loop's trip count could not be bounded, so the WCEC
    /// certificate is unbounded along paths through it.
    UnboundedLoop,
    /// `NVP-I001`: backup live-set report at a resume point.
    BackupLiveSet,
    /// `NVP-I002`: WCEC headroom report — worst region energy vs. the
    /// usable capacitor budget at the declared operating floor.
    WcecHeadroom,
}

impl LintCode {
    /// Every lint code, in legend order (errors, warnings, infos).
    pub const ALL: [LintCode; 12] = [
        LintCode::BranchOnApprox,
        LintCode::AddressFromApprox,
        LintCode::StoreOutsideRegion,
        LintCode::ApproxUnsafeAddressOrBranch,
        LintCode::ExactValueOverflow,
        LintCode::RegionLivelock,
        LintCode::WarHazard,
        LintCode::DeadResumeReg,
        LintCode::OverConservativeBits,
        LintCode::UnboundedLoop,
        LintCode::BackupLiveSet,
        LintCode::WcecHeadroom,
    ];

    /// The stable code string (`NVP-E001`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::BranchOnApprox => "NVP-E001",
            LintCode::AddressFromApprox => "NVP-E002",
            LintCode::StoreOutsideRegion => "NVP-E003",
            LintCode::ApproxUnsafeAddressOrBranch => "NVP-E004",
            LintCode::ExactValueOverflow => "NVP-E005",
            LintCode::RegionLivelock => "NVP-E006",
            LintCode::WarHazard => "NVP-W001",
            LintCode::DeadResumeReg => "NVP-W002",
            LintCode::OverConservativeBits => "NVP-W003",
            LintCode::UnboundedLoop => "NVP-W004",
            LintCode::BackupLiveSet => "NVP-I001",
            LintCode::WcecHeadroom => "NVP-I002",
        }
    }

    /// One-line legend description.
    pub fn description(self) -> &'static str {
        match self {
            LintCode::BranchOnApprox => "branch condition reads an approximate register",
            LintCode::AddressFromApprox => {
                "effective address computed from an approximate register"
            }
            LintCode::StoreOutsideRegion => "approximate store outside the declared region",
            LintCode::ApproxUnsafeAddressOrBranch => {
                "control flow or addressing deviates at the declared bit floor"
            }
            LintCode::ExactValueOverflow => {
                "possible exact-value wraparound reaches a branch/address"
            }
            LintCode::RegionLivelock => {
                "region's cheapest traversal exceeds the capacitor at every setting"
            }
            LintCode::WarHazard => "non-idempotent write inside a roll-forward region",
            LintCode::DeadResumeReg => "resume loop-variable register is never read",
            LintCode::OverConservativeBits => "declared bit floor is provably over-conservative",
            LintCode::UnboundedLoop => "loop trip count could not be bounded",
            LintCode::BackupLiveSet => "backup live-set report at a resume point",
            LintCode::WcecHeadroom => "WCEC headroom vs. the usable capacitor budget",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::BranchOnApprox
            | LintCode::AddressFromApprox
            | LintCode::StoreOutsideRegion
            | LintCode::ApproxUnsafeAddressOrBranch
            | LintCode::ExactValueOverflow
            | LintCode::RegionLivelock => Severity::Error,
            LintCode::WarHazard
            | LintCode::DeadResumeReg
            | LintCode::OverConservativeBits
            | LintCode::UnboundedLoop => Severity::Warning,
            LintCode::BackupLiveSet | LintCode::WcecHeadroom => Severity::Info,
        }
    }
}

/// Renders the shared lint-code legend for a report mode.
///
/// Every `nvp-lint` mode (default, `--bitwidth`, `--energy`) prints the
/// legend for the codes it can emit through this one helper, so the
/// formatting cannot drift between modes: one `  CODE  severity  text`
/// line per code, in [`LintCode::ALL`] order.
pub fn render_legend(codes: &[LintCode]) -> String {
    let mut out = String::from("legend:\n");
    for code in LintCode::ALL {
        if codes.contains(&code) {
            out.push_str(&format!(
                "  {}  {:<7}  {}\n",
                code.as_str(),
                code.severity().to_string(),
                code.description()
            ));
        }
    }
    out
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from one pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// Offending instruction index, if the finding is anchored to one.
    pub pc: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// Disassembly context lines (built by [`Diagnostic::with_context`]).
    pub context: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic anchored at `pc`.
    pub fn at(code: LintCode, pc: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            pc: Some(pc),
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Creates a program-level diagnostic (no single pc).
    pub fn program_level(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            pc: None,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// The severity of this diagnostic (derived from its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Attaches ±1 instructions of disassembly around the anchor pc,
    /// marking the offending line with `>`.
    pub fn with_context(mut self, program: &Program) -> Self {
        if let Some(pc) = self.pc {
            let lo = pc.saturating_sub(1);
            let hi = (pc + 2).min(program.len());
            for at in lo..hi {
                if let Some(i) = program.fetch(at) {
                    let marker = if at == pc { '>' } else { ' ' };
                    self.context.push(format!("{marker} {at:4} | {i}"));
                }
            }
        }
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity(), self.code, self.message)?;
        if let Some(pc) = self.pc {
            write!(f, " (pc {pc})")?;
        }
        for line in &self.context {
            write!(f, "\n    {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::{ProgramBuilder, Reg};

    #[test]
    fn codes_are_stable_and_severities_fixed() {
        assert_eq!(LintCode::BranchOnApprox.as_str(), "NVP-E001");
        assert_eq!(LintCode::ApproxUnsafeAddressOrBranch.as_str(), "NVP-E004");
        assert_eq!(LintCode::ExactValueOverflow.as_str(), "NVP-E005");
        assert_eq!(LintCode::WarHazard.as_str(), "NVP-W001");
        assert_eq!(LintCode::OverConservativeBits.as_str(), "NVP-W003");
        assert_eq!(LintCode::RegionLivelock.as_str(), "NVP-E006");
        assert_eq!(LintCode::UnboundedLoop.as_str(), "NVP-W004");
        assert_eq!(LintCode::WcecHeadroom.as_str(), "NVP-I002");
        assert_eq!(LintCode::ExactValueOverflow.severity(), Severity::Error);
        assert_eq!(LintCode::RegionLivelock.severity(), Severity::Error);
        assert_eq!(LintCode::OverConservativeBits.severity(), Severity::Warning);
        assert_eq!(LintCode::UnboundedLoop.severity(), Severity::Warning);
        assert_eq!(LintCode::BackupLiveSet.severity(), Severity::Info);
        assert_eq!(LintCode::WcecHeadroom.severity(), Severity::Info);
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn all_covers_every_code_exactly_once() {
        let mut strs: Vec<&str> = LintCode::ALL.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), LintCode::ALL.len());
    }

    #[test]
    fn legend_renders_requested_codes_in_stable_order() {
        let s = render_legend(&[LintCode::WcecHeadroom, LintCode::RegionLivelock]);
        let e = s.find("NVP-E006").expect("E006 in legend");
        let i = s.find("NVP-I002").expect("I002 in legend");
        assert!(e < i, "errors precede infos:\n{s}");
        assert!(!s.contains("NVP-E001"));
        assert!(s.contains("error"));
        assert!(s.contains("cheapest traversal exceeds"), "{s}");
    }

    #[test]
    fn display_includes_code_pc_and_context() {
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 1).st(5, Reg(0)).halt();
        let p = b.build().unwrap();
        let d = Diagnostic::at(LintCode::WarHazard, 1, "write-after-read of [5]").with_context(&p);
        let s = d.to_string();
        assert!(s.contains("NVP-W001"), "{s}");
        assert!(s.contains("(pc 1)"), "{s}");
        assert!(s.contains(">    1 | st"), "{s}");
        assert!(s.contains("     0 | ldi"), "{s}");
    }

    #[test]
    fn program_level_has_no_pc() {
        let d = Diagnostic::program_level(LintCode::DeadResumeReg, "r9 never read");
        assert!(d.pc.is_none());
        assert!(!d.to_string().contains("pc"));
    }
}
