//! Static dirty-set analysis: what has a checkpoint region *written*?
//!
//! Freezer-style incremental backup saves only state written since the
//! last commit point. The runtime alternative tracks writes in hardware;
//! this pass gets the same set **statically**. For every
//! checkpoint-to-checkpoint region it computes a sound upper bound on
//!
//! * the registers any execution of the region can write
//!   ([`RegionDirty::dirty_regs`], the union of destination registers
//!   over the region's pcs), refined to a flow-sensitive *per-pc* bound:
//!   the registers that may have been written on some path from the
//!   region's checkpoint to the pc, with edges back into the checkpoint
//!   cut — re-crossing the checkpoint is a commit that resets dirtiness,
//!   exactly as [`crate::wcec`]'s region solver cuts re-entry;
//! * the memory words any execution can store to: absolute stores
//!   contribute their exact address, indirect stores the address range
//!   `[base.lo + off, base.hi + off]` from the interval domain
//!   ([`crate::error_bound`], whose ranges cover approximate runs at the
//!   declared floor and above). A store whose address cannot be bounded
//!   (wrapped arithmetic, oversized range) degrades the region to
//!   [`MemDirty::Whole`] — pessimistic, never unsound.
//!
//! Intersecting the per-pc written set with backup-liveness yields the
//! `live ∩ dirty` backup mask: at a backup at pc, a register needs
//! saving only if some later instruction reads it (live) *and* some path
//! from the last checkpoint crossing may have changed it (dirty).
//! Registers outside the mask still hold their last-committed values in
//! the snapshot, so restoring them is exact — *provided* every
//! checkpoint crossing commits the just-completed region's dirty set,
//! the assumption the placement search ([`crate::ckpt_place`]) charges
//! for and DESIGN.md §12 spells out. A pc covered by several
//! (overlapping) regions uses the union of their per-pc sets: whichever
//! checkpoint the current charge cycle actually crossed last, its
//! written-since set is included.

use crate::backup_liveness::BackupLiveness;
use crate::cfg::Cfg;
use crate::dataflow::Solution;
use crate::error_bound::{solve_error_bounds, ApproxState};
use crate::wcec::{declared_checkpoints, RegionKind};
use nvp_isa::{Instr, Program, NUM_REGS};
use std::collections::BTreeSet;

/// Largest address-range width an indirect store may contribute before
/// the region degrades to whole-memory (covers every shipped kernel's
/// data array with room to spare).
const MAX_RANGE_WORDS: i64 = 1 << 16;

/// Sound upper bound on the memory words one region can write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemDirty {
    /// At most these words (absolute addresses).
    Words(BTreeSet<u32>),
    /// Some store could not be bounded: assume the whole memory.
    Whole,
}

impl MemDirty {
    /// Number of possibly-dirty words, given the total memory size.
    pub fn word_count(&self, mem_words: usize) -> usize {
        match self {
            MemDirty::Words(w) => w.len(),
            MemDirty::Whole => mem_words,
        }
    }

    /// Does the bound admit a write to `addr`?
    pub fn contains(&self, addr: u32) -> bool {
        match self {
            MemDirty::Words(w) => w.contains(&addr),
            MemDirty::Whole => true,
        }
    }
}

/// The dirty set of one checkpoint-to-checkpoint region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDirty {
    /// The checkpoint pc the region starts at.
    pub start_pc: usize,
    /// What kind of checkpoint starts it.
    pub kind: RegionKind,
    /// Pcs belonging to the region (sorted; includes bounding
    /// checkpoints, mirroring [`crate::wcec::Region::pcs`]).
    pub pcs: Vec<usize>,
    /// Registers any execution of the region may write (bit per reg).
    pub dirty_regs: u16,
    /// Memory words any execution of the region may write.
    pub mem: MemDirty,
}

/// Dirty sets for every region, plus the per-pc `live ∩ dirty` masks.
#[derive(Debug, Clone, PartialEq)]
pub struct DirtyReport {
    /// Bitwidth floor the store-address intervals were derived at.
    pub bits: u8,
    /// One entry per checkpoint, sorted by start pc.
    pub regions: Vec<RegionDirty>,
    /// Per-pc backup mask: `live_at(pc) ∩ ⋃ written-since-checkpoint`
    /// over the regions containing pc. Pcs in no region keep the full
    /// mask.
    masks: Vec<u16>,
}

impl DirtyReport {
    /// The `live ∩ dirty` backup mask at `pc`. Out-of-range pcs get the
    /// full mask — the caller must treat that as "back up everything".
    pub fn mask_at(&self, pc: usize) -> u16 {
        self.masks.get(pc).copied().unwrap_or(u16::MAX)
    }

    /// Fraction of the register file the mask at `pc` keeps.
    pub fn mask_fraction(&self, pc: usize) -> f64 {
        f64::from(self.mask_at(pc).count_ones()) / NUM_REGS as f64
    }

    /// The per-pc mask table (index = pc), for export to the simulator.
    pub fn masks(&self) -> &[u16] {
        &self.masks
    }

    /// The region starting at `start_pc`, if any.
    pub fn region_at(&self, start_pc: usize) -> Option<&RegionDirty> {
        self.regions.iter().find(|r| r.start_pc == start_pc)
    }
}

/// Computes the dirty-set report over the program's *declared*
/// checkpoints. `bits` is the declared governor floor the store-address
/// intervals are derived at (ranges are valid at that floor and above).
pub fn dirty_report(program: &Program, cfg: &Cfg, bits: u8, mem_words: usize) -> DirtyReport {
    DirtyAnalyzer::new(program, cfg, bits, mem_words).report_at(&declared_checkpoints(program))
}

/// [`dirty_report`] over an explicit checkpoint set — the entry point
/// placement synthesis uses to evaluate candidate placements.
pub fn dirty_report_at(
    program: &Program,
    cfg: &Cfg,
    bits: u8,
    mem_words: usize,
    checkpoints: &[(usize, RegionKind)],
) -> DirtyReport {
    DirtyAnalyzer::new(program, cfg, bits, mem_words).report_at(checkpoints)
}

/// Caches the placement-independent pieces (interval solution, backup
/// liveness) so a placement search can score many checkpoint sets
/// without re-running the expensive fixpoints.
pub struct DirtyAnalyzer<'a> {
    program: &'a Program,
    cfg: &'a Cfg,
    bits: u8,
    mem_words: usize,
    sol: Solution<ApproxState>,
    live: BackupLiveness,
}

impl<'a> DirtyAnalyzer<'a> {
    /// Runs the placement-independent analyses once.
    pub fn new(program: &'a Program, cfg: &'a Cfg, bits: u8, mem_words: usize) -> Self {
        DirtyAnalyzer {
            program,
            cfg,
            bits,
            mem_words,
            sol: solve_error_bounds(program, cfg, bits),
            live: BackupLiveness::compute(program),
        }
    }

    /// The cached backup-liveness result.
    pub fn liveness(&self) -> &BackupLiveness {
        &self.live
    }

    /// Builds the dirty report for one checkpoint set.
    pub fn report_at(&self, checkpoints: &[(usize, RegionKind)]) -> DirtyReport {
        let program = self.program;
        let len = program.len();
        let mut is_checkpoint = vec![false; len];
        for &(pc, _) in checkpoints {
            if pc < len {
                is_checkpoint[pc] = true;
            }
        }

        let mut regions = Vec::with_capacity(checkpoints.len());
        // Union over regions of the per-pc written-since-entry sets.
        let mut dirty_at = vec![0u16; len];
        let mut covered = vec![false; len];
        for &(start_pc, kind) in checkpoints {
            if start_pc >= len {
                continue;
            }
            let pcs = self
                .cfg
                .reachable_until(start_pc, |pc| pc != start_pc && is_checkpoint[pc]);
            let mut in_region = vec![false; len];
            for &pc in &pcs {
                in_region[pc] = true;
            }

            // Region-level summary: union of dsts and store targets.
            let mut dirty_regs = 0u16;
            let mut mem = MemDirty::Words(BTreeSet::new());
            for &pc in &pcs {
                let instr = program.fetch(pc).expect("pc in range");
                if let Some(d) = instr.dst() {
                    dirty_regs |= 1 << d.0;
                }
                match instr {
                    Instr::St(a, _) => {
                        if let MemDirty::Words(w) = &mut mem {
                            w.insert(a);
                        }
                    }
                    Instr::StInd(base, off, _) => {
                        let range = self.sol.before_at(pc).and_then(|s| {
                            let iv = s.reg(base).iv;
                            if iv.wrapped {
                                return None;
                            }
                            // Faulting addresses never commit a write,
                            // so clamping to the valid window is sound.
                            let lo = (iv.lo + i64::from(off)).max(0);
                            let hi = (iv.hi + i64::from(off)).min(self.mem_words as i64 - 1);
                            (lo <= hi && hi - lo < MAX_RANGE_WORDS).then_some((lo, hi))
                        });
                        match (range, &mut mem) {
                            (Some((lo, hi)), MemDirty::Words(w)) => {
                                for a in lo..=hi {
                                    w.insert(a as u32);
                                }
                            }
                            (None, _) => mem = MemDirty::Whole,
                            _ => {}
                        }
                    }
                    _ => {}
                }
            }

            // Flow-sensitive per-pc bound: union-join forward fixpoint of
            // written registers from the checkpoint, with edges into the
            // checkpoint cut (a crossing commits) and no propagation out
            // of the bounding checkpoints (their successors belong to the
            // next region).
            // Seed every region pc: with an all-zero initial state a
            // change-driven worklist would otherwise never leave the
            // checkpoint (propagating 0 into 0 is "no change").
            let mut before = vec![0u16; len];
            let mut on_work = vec![false; len];
            let mut work = pcs.clone();
            for &pc in &pcs {
                on_work[pc] = true;
            }
            while let Some(pc) = work.pop() {
                on_work[pc] = false;
                if pc != start_pc && is_checkpoint[pc] {
                    continue;
                }
                let mut after = before[pc];
                if let Some(d) = program.fetch(pc).and_then(|i| i.dst()) {
                    after |= 1 << d.0;
                }
                for &s in self.cfg.succs(pc) {
                    if !in_region[s] || s == start_pc {
                        continue;
                    }
                    if before[s] | after != before[s] {
                        before[s] |= after;
                        if !on_work[s] {
                            on_work[s] = true;
                            work.push(s);
                        }
                    }
                }
            }
            for &pc in &pcs {
                dirty_at[pc] |= before[pc];
                covered[pc] = true;
            }

            regions.push(RegionDirty {
                start_pc,
                kind,
                pcs,
                dirty_regs,
                mem,
            });
        }

        // Pcs in no region keep the full mask: no commit point bounds
        // their dirtiness, so nothing can be skipped.
        let masks = (0..len)
            .map(|pc| {
                if covered[pc] {
                    self.live.live_at(pc) & dirty_at[pc]
                } else {
                    u16::MAX
                }
            })
            .collect();

        DirtyReport {
            bits: self.bits,
            regions,
            masks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::{ProgramBuilder, Reg};

    fn report(p: &Program) -> DirtyReport {
        dirty_report(p, &Cfg::build(p), 8, 256)
    }

    #[test]
    fn straight_line_region_collects_exact_stores_and_dsts() {
        let mut b = ProgramBuilder::new();
        b.mark_resume(0)
            .ldi(Reg(3), 7)
            .st(42, Reg(3))
            .frame_done()
            .halt();
        let p = b.build().unwrap();
        let r = report(&p);
        let entry = r.region_at(0).expect("entry region");
        assert!(entry.dirty_regs & (1 << 3) != 0);
        let MemDirty::Words(w) = &entry.mem else {
            panic!("expected bounded mem dirty set")
        };
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn bounded_indirect_store_yields_a_word_range() {
        // i walks 0..8, st_ind writes [i + 100]: dirty = 100..=107.
        let mut b = ProgramBuilder::new();
        let (i, n, v) = (Reg(0), Reg(1), Reg(2));
        b.mark_resume(0).ldi(i, 0).ldi(n, 8).ldi(v, 1);
        let top = b.label();
        b.place(top);
        b.st_ind(i, 100, v).addi(i, i, 1).brlt(i, n, top);
        b.frame_done().halt();
        let p = b.build().unwrap();
        let r = report(&p);
        let region = r.region_at(0).expect("entry region");
        let MemDirty::Words(w) = &region.mem else {
            panic!("expected bounded mem dirty set")
        };
        assert!(w.contains(&100) && w.contains(&107), "{w:?}");
        assert!(!w.contains(&108) && !w.contains(&99), "{w:?}");
    }

    #[test]
    fn unboundable_store_admits_every_address() {
        // Base loaded from memory: the interval domain cannot bound it
        // below "anywhere in memory".
        let mut b = ProgramBuilder::new();
        b.mark_resume(0)
            .ld(Reg(0), 5)
            .ldi(Reg(1), 1)
            .st_ind(Reg(0), 0, Reg(1))
            .frame_done()
            .halt();
        let p = b.build().unwrap();
        let r = report(&p);
        let region = r.region_at(0).expect("entry region");
        assert!(region.mem.contains(0) && region.mem.contains(255));
    }

    #[test]
    fn per_pc_mask_excludes_not_yet_written_regs() {
        // r5 written late in the region: at earlier pcs it is clean even
        // though live-out of those pcs, so the mask drops it.
        let mut b = ProgramBuilder::new();
        b.mark_resume(0)
            .ldi(Reg(6), 1) // pc 1
            .ldi(Reg(5), 2) // pc 2
            .add(Reg(7), Reg(5), Reg(6)) // pc 3
            .st(0, Reg(7)) // pc 4
            .frame_done()
            .halt();
        let p = b.build().unwrap();
        let r = report(&p);
        // Before pc 2 runs, r5 is not yet written since the checkpoint.
        assert_eq!(r.mask_at(2) & (1 << 5), 0, "r5 clean before its write");
        // After the write (at pc 3), r5 is dirty and live.
        assert!(r.mask_at(3) & (1 << 5) != 0, "r5 dirty+live at pc 3");
        // Masks are subsets of the live sets everywhere.
        let live = BackupLiveness::compute(&p);
        for pc in 0..p.len() {
            assert_eq!(
                r.mask_at(pc) & !live.live_at(pc),
                0,
                "mask ⊆ live at pc {pc}"
            );
        }
    }

    #[test]
    fn checkpoint_in_loop_cuts_the_back_edge() {
        // With a checkpoint at the loop head, the loop counter increment
        // at the tail must NOT reach the body pcs through the back edge:
        // after a crossing the counter is committed, so mid-body it is
        // clean.
        let mut b = ProgramBuilder::new();
        let (i, n, v) = (Reg(0), Reg(1), Reg(2));
        b.ldi(i, 0).ldi(n, 8);
        let top = b.label();
        b.place(top);
        b.mark_resume(1) // pc 2: checkpoint at the loop head
            .ldi(v, 3) // pc 3: body
            .st_ind(i, 100, v) // pc 4
            .addi(i, i, 1) // pc 5: tail write of i
            .brlt(i, n, top); // pc 6
        b.frame_done().halt();
        let p = b.build().unwrap();
        let r = report(&p);
        let marker_pc = 2;
        assert!(r.region_at(marker_pc).is_some(), "resume region exists");
        // At pc 5 (before the i increment runs), i is clean relative to
        // the loop-head checkpoint: the tail's write can only reach the
        // body through the back edge into the checkpoint, which a
        // crossing commits. The entry region stops at the marker, so
        // pc 5 is only in the resume region.
        assert_eq!(r.mask_at(5) & (1 << 0), 0, "loop counter clean mid-body");
        assert_eq!(r.mask_at(6) & (1 << 2), 0, "v dead after its last use");
    }

    #[test]
    fn dirty_union_covers_overlapping_regions() {
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ldi(n, 4).mark_resume(0);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 1).brlt(i, n, top);
        b.frame_done().halt();
        let p = b.build().unwrap();
        let r = report(&p);
        let live = BackupLiveness::compute(&p);
        for region in &r.regions {
            for &pc in &region.pcs {
                // The mask admits every reg that is live and may have
                // been written since this region's checkpoint (coarse
                // region-level check: per-pc sets are subsets of
                // dirty_regs).
                let m = r.mask_at(pc);
                assert_eq!(
                    m & !(live.live_at(pc)),
                    0,
                    "mask ⊆ live at pc {pc}: {m:#06x}"
                );
            }
        }
    }
}
