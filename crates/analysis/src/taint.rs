//! Flow-sensitive approximation-taint analysis.
//!
//! Re-implements (and subsumes) `nvp_isa::analysis::verify_ac_isolation`
//! as a fixpoint dataflow pass over the CFG. The safety contract (paper
//! Section 5) is that approximate values never reach control flow,
//! effective addresses, or precise memory:
//!
//! * `NVP-E001` — a branch tests a tainted register,
//! * `NVP-E002` — an indirect access computes its address from a tainted
//!   base register,
//! * `NVP-E003` — a tainted absolute store lands outside the declared
//!   approximable region.
//!
//! Compared to the seed's register-only global fixpoint this pass is
//! flow-sensitive (a precise redefinition of a derived register clears its
//! taint on the paths that follow) and tracks **memory taint**: a tainted
//! store taints its target location, and a later load from that location
//! taints the destination register — including around loop back-edges,
//! the hole the old linear scan could not see (a value stored late in an
//! iteration and reloaded at the top of the next one).
//!
//! AC-marked registers are permanently tainted: the hardware approximates
//! *every* ALU write to them (`ApproxConfig::ac_en`), so no assignment can
//! launder them. Memory locations are named precisely: absolute addresses
//! as-is, indirect accesses symbolically as `(base register, unique
//! reaching definition of the base, offset)`. Indirect and absolute
//! accesses are not aliased against each other, and neither are indirect
//! accesses with different offsets — kernels select disjoint regions
//! (constant tables / input / output) through the offset, with the base
//! register a small element index. A tainted store whose base has no
//! unique definition (e.g. a loop induction variable at the loop head)
//! conservatively taints every later indirect load *at the same offset*.

use crate::cfg::Cfg;
use crate::dataflow::{solve, Analysis, Direction};
use crate::diag::{Diagnostic, LintCode};
use crate::lattice::{entry_defs, join_defs, sym_for, union_into, DefSite, Sym};
use crate::{Pass, PassContext};
use nvp_isa::{Instr, Program, Reg, NUM_REGS};
use std::collections::BTreeSet;

/// The taint lattice element at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TaintState {
    /// Tainted registers (bitmask).
    pub regs: u16,
    /// Reaching definition of each register, for symbol naming.
    pub defs: [DefSite; NUM_REGS],
    /// Tainted absolute memory addresses.
    pub mem_abs: BTreeSet<u32>,
    /// Tainted symbolic (indirect) memory locations.
    pub mem_sym: BTreeSet<Sym>,
    /// Offsets of tainted stores through bases with no unique definition:
    /// any later indirect load at one of these offsets is tainted.
    pub unknown_offs: BTreeSet<i32>,
}

impl TaintState {
    fn entry(ac_regs: u16) -> Self {
        TaintState {
            regs: ac_regs,
            defs: entry_defs(),
            mem_abs: BTreeSet::new(),
            mem_sym: BTreeSet::new(),
            unknown_offs: BTreeSet::new(),
        }
    }

    fn is_tainted(&self, r: Reg) -> bool {
        self.regs & (1 << r.0) != 0
    }

    /// Is the location `base + off` possibly tainted? Checks the exact
    /// symbol when the base has a unique definition, and in either case
    /// any tainted access at the same offset whose base was merged.
    fn mem_tainted(&self, base: Reg, off: i32) -> bool {
        if self.unknown_offs.contains(&off) {
            return true;
        }
        match self.sym(base, off) {
            Some(sym) => self.mem_sym.contains(&sym),
            // Merged base: alias against every tainted symbol at this
            // offset.
            None => self.mem_sym.iter().any(|&(_, _, o)| o == off),
        }
    }

    /// Symbol for `base + off`, if the base has a unique reaching def.
    pub(crate) fn sym(&self, base: Reg, off: i32) -> Option<Sym> {
        sym_for(&self.defs, base, off)
    }
}

struct TaintAnalysis {
    ac_regs: u16,
}

impl TaintAnalysis {
    fn set_reg(&self, s: &mut TaintState, d: Reg, tainted: bool, pc: usize) {
        // AC-marked registers never lose taint: the datapath approximates
        // every ALU write to them.
        let bit = 1u16 << d.0;
        if tainted || self.ac_regs & bit != 0 {
            s.regs |= bit;
        } else {
            s.regs &= !bit;
        }
        s.defs[d.index()] = DefSite::Unique(pc);
    }
}

impl Analysis for TaintAnalysis {
    type State = TaintState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> TaintState {
        TaintState::entry(self.ac_regs)
    }

    fn transfer(&self, pc: usize, instr: Instr, before: &TaintState) -> TaintState {
        let mut s = before.clone();
        match instr {
            Instr::Ldi(d, _) => {
                // Immediates are written precisely (no ALU involved).
                self.set_reg(&mut s, d, false, pc);
            }
            Instr::Ld(d, a) => {
                let t = before.mem_abs.contains(&a);
                self.set_reg(&mut s, d, t, pc);
            }
            Instr::LdInd(d, base, off) => {
                // A tainted base yields an unpredictable value; otherwise
                // the value is tainted iff the named location may be.
                let t = before.is_tainted(base) || before.mem_tainted(base, off);
                self.set_reg(&mut s, d, t, pc);
            }
            Instr::St(a, src) => {
                if before.is_tainted(src) {
                    s.mem_abs.insert(a);
                } else {
                    s.mem_abs.remove(&a);
                }
            }
            Instr::StInd(base, off, src) => {
                let t = before.is_tainted(src) || before.is_tainted(base);
                match before.sym(base, off) {
                    Some(sym) => {
                        if t {
                            s.mem_sym.insert(sym);
                        } else {
                            s.mem_sym.remove(&sym);
                        }
                    }
                    None => {
                        if t {
                            s.unknown_offs.insert(off);
                        }
                    }
                }
            }
            _ => {
                if let Some(d) = instr.dst() {
                    let t = instr.srcs().iter().any(|&r| before.is_tainted(r));
                    self.set_reg(&mut s, d, t, pc);
                }
            }
        }
        s
    }

    fn join(&self, into: &mut TaintState, other: &TaintState) {
        into.regs |= other.regs;
        join_defs(&mut into.defs, &other.defs);
        union_into(&mut into.mem_abs, &other.mem_abs);
        union_into(&mut into.mem_sym, &other.mem_sym);
        union_into(&mut into.unknown_offs, &other.unknown_offs);
    }
}

/// The approximation-isolation taint pass.
#[derive(Debug, Default)]
pub struct TaintPass;

impl Pass for TaintPass {
    fn name(&self) -> &'static str {
        "taint"
    }

    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
        check_taint(cx.program, cx.cfg, cx.config.sanitized_regs)
    }
}

/// Runs the taint pass directly, returning its diagnostics.
pub fn check_taint(program: &Program, cfg: &Cfg, sanitized: u16) -> Vec<Diagnostic> {
    let analysis = TaintAnalysis {
        ac_regs: program.ac_regs(),
    };
    let sol = solve(program, cfg, &analysis);
    let region = program.approx_region();
    let mut out = Vec::new();
    let tainted = |s: &TaintState, r: Reg| s.is_tainted(r) && sanitized & (1 << r.0) == 0;
    for (pc, i) in program.iter() {
        let Some(s) = sol.before_at(pc) else {
            continue; // unreachable code
        };
        let mut branch_on = |r: Reg| {
            if tainted(s, r) {
                out.push(
                    Diagnostic::at(
                        LintCode::BranchOnApprox,
                        pc,
                        format!("branch tests approximate register {r}"),
                    )
                    .with_context(program),
                );
            }
        };
        match i {
            Instr::Brz(r, _) | Instr::Brnz(r, _) => branch_on(r),
            Instr::Brlt(a, b, _) | Instr::Brge(a, b, _) => {
                branch_on(a);
                branch_on(b);
            }
            Instr::LdInd(_, base, _) | Instr::StInd(base, _, _) if tainted(s, base) => {
                out.push(
                    Diagnostic::at(
                        LintCode::AddressFromApprox,
                        pc,
                        format!("address computed from approximate register {base}"),
                    )
                    .with_context(program),
                );
            }
            Instr::St(addr, src)
                if tainted(s, src)
                    && !region.as_ref().map(|r| r.contains(&addr)).unwrap_or(false) =>
            {
                out.push(
                    Diagnostic::at(
                        LintCode::StoreOutsideRegion,
                        pc,
                        format!("approximate store of {src} to [{addr}] outside the marked region"),
                    )
                    .with_context(program),
                );
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::ProgramBuilder;

    fn run(p: &Program, sanitized: u16) -> Vec<Diagnostic> {
        check_taint(p, &Cfg::build(p), sanitized)
    }

    #[test]
    fn clean_program_is_silent() {
        let mut b = ProgramBuilder::new();
        b.mark_ac(Reg(4)).approx_region(0, 100);
        b.ldi(Reg(0), 5)
            .ld_ind(Reg(4), Reg(0), 0)
            .addi(Reg(4), Reg(4), 1)
            .st(10, Reg(4))
            .halt();
        let p = b.build().unwrap();
        assert!(run(&p, 0).is_empty());
    }

    #[test]
    fn branch_on_ac_reg_flagged_even_after_ldi() {
        // AC registers are hardware-approximated on every ALU write; the
        // conservative contract keeps them tainted through immediates.
        let mut b = ProgramBuilder::new();
        b.mark_ac(Reg(4));
        let end = b.label();
        b.ldi(Reg(4), 1).brz(Reg(4), end);
        b.place(end);
        b.halt();
        let p = b.build().unwrap();
        let v = run(&p, 0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, LintCode::BranchOnApprox);
    }

    #[test]
    fn derived_taint_cleared_by_precise_redefinition() {
        // r5 = r4 (tainted), then r5 = 3 (precise) — branching on r5 after
        // the redefinition is fine. The old flow-insensitive pass flags it.
        let mut b = ProgramBuilder::new();
        b.mark_ac(Reg(4));
        let end = b.label();
        b.mov(Reg(5), Reg(4)).ldi(Reg(5), 3).brz(Reg(5), end);
        b.place(end);
        b.halt();
        let p = b.build().unwrap();
        assert!(run(&p, 0).is_empty());
        assert!(!nvp_isa::analysis::verify_ac_isolation(&p).is_empty());
    }

    #[test]
    fn memory_taint_through_absolute_store_and_load() {
        let mut b = ProgramBuilder::new();
        b.mark_ac(Reg(4)).approx_region(0, 100);
        let end = b.label();
        b.st(20, Reg(4)) // taints [20]
            .ld(Reg(0), 20) // r0 now tainted through memory
            .brz(Reg(0), end);
        b.place(end);
        b.halt();
        let p = b.build().unwrap();
        let v = run(&p, 0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, LintCode::BranchOnApprox);
        assert_eq!(v[0].pc, Some(2));
    }

    #[test]
    fn memory_taint_killed_by_precise_overwrite() {
        let mut b = ProgramBuilder::new();
        b.mark_ac(Reg(4)).approx_region(0, 100);
        let end = b.label();
        b.st(20, Reg(4)) // taints [20]
            .ldi(Reg(1), 0)
            .st(20, Reg(1)) // precise overwrite clears it
            .ld(Reg(0), 20)
            .brz(Reg(0), end);
        b.place(end);
        b.halt();
        let p = b.build().unwrap();
        assert!(run(&p, 0).is_empty());
    }

    #[test]
    fn symbolic_memory_taint_through_indirect_store() {
        let mut b = ProgramBuilder::new();
        b.mark_ac(Reg(4)).approx_region(0, 100);
        let end = b.label();
        b.ldi(Reg(2), 10)
            .st_ind(Reg(2), 0, Reg(4)) // taints (r2@0, +0)
            .ld_ind(Reg(0), Reg(2), 0) // same symbol — tainted
            .brz(Reg(0), end);
        b.place(end);
        b.halt();
        let p = b.build().unwrap();
        let v = run(&p, 0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, LintCode::BranchOnApprox);
    }

    #[test]
    fn merged_base_store_taints_same_offset_only() {
        // A loop stores an AC value through its induction variable (merged
        // definition at the loop head, offset 200). A later load through
        // the same variable at offset 0 reads a different region (the
        // constant-table pattern every kernel uses) and must stay precise;
        // a load at offset 200 may alias the tainted store.
        let build = |load_off: i32| {
            let mut b = ProgramBuilder::new();
            b.mark_ac(Reg(4)).approx_region(200, 300);
            let (i, n) = (Reg(0), Reg(1));
            b.ldi(i, 0).ldi(n, 4);
            let top = b.label();
            b.place(top);
            b.st_ind(i, 200, Reg(4)) // tainted store, merged base in loop
                .addi(i, i, 1)
                .brlt(i, n, top);
            let end = b.label();
            b.ld_ind(Reg(2), i, load_off).brz(Reg(2), end);
            b.place(end);
            b.halt();
            b.build().unwrap()
        };
        assert!(run(&build(0), 0).is_empty());
        let v = run(&build(200), 0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, LintCode::BranchOnApprox);
    }

    #[test]
    fn sanitized_registers_are_exempt_at_use_sites() {
        let mut b = ProgramBuilder::new();
        b.mark_ac(Reg(4));
        b.add(Reg(5), Reg(4), Reg(4))
            .mini(Reg(5), Reg(5), 9)
            .maxi(Reg(5), Reg(5), 0)
            .ld_ind(Reg(6), Reg(5), 0)
            .halt();
        let p = b.build().unwrap();
        assert!(!run(&p, 0).is_empty());
        assert!(run(&p, 1 << 5).is_empty());
    }

    #[test]
    fn store_outside_region_flagged() {
        let mut b = ProgramBuilder::new();
        b.mark_ac(Reg(4)).approx_region(0, 8);
        b.st(100, Reg(4)).halt();
        let p = b.build().unwrap();
        let v = run(&p, 0);
        assert_eq!(v[0].code, LintCode::StoreOutsideRegion);
    }
}
