//! A generic worklist fixpoint engine over per-instruction program points.
//!
//! Replaces the seed's linear single-pass taint scan, which was unsound
//! across loop back-edges: facts established late in a loop body never
//! reached earlier instructions. The engine iterates transfer functions to
//! a fixpoint over the CFG, propagating along back-edges until states
//! stabilize.
//!
//! States are joined optimistically: an unvisited predecessor contributes
//! nothing (it is ⊤ for must-analyses and ⊥ for may-analyses), which lets
//! one engine serve both kinds — the analysis' [`Analysis::join`] decides
//! whether facts union (may) or intersect (must).

use crate::cfg::Cfg;
use nvp_isa::{Instr, Program};

/// Direction of propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// States flow from predecessors to successors.
    Forward,
    /// States flow from successors to predecessors.
    Backward,
}

/// A dataflow analysis at per-instruction granularity.
pub trait Analysis {
    /// The lattice element tracked at each program point.
    type State: Clone + PartialEq;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// State at the boundary: the entry point (forward) or every exit
    /// point (backward).
    fn boundary(&self) -> Self::State;

    /// Effect of executing `instr` at `pc` on `state`.
    fn transfer(&self, pc: usize, instr: Instr, state: &Self::State) -> Self::State;

    /// Merges `other` into `into` at a control-flow join.
    fn join(&self, into: &mut Self::State, other: &Self::State);

    /// Refines `state` as it flows along the CFG edge `from → to`
    /// (forward analyses only; `from_instr` is the instruction at
    /// `from`). Returning `None` marks the edge infeasible — the source
    /// contributes nothing to the join at `to`. Used by the interval
    /// domain to narrow branch operands on taken/fall-through edges.
    ///
    /// Implementations must be monotone: a larger `state` must map to a
    /// larger (or equally infeasible-or-larger) refinement, or the
    /// fixpoint iteration may diverge.
    fn edge(
        &self,
        _from: usize,
        _from_instr: Instr,
        _to: usize,
        state: &Self::State,
    ) -> Option<Self::State> {
        Some(state.clone())
    }

    /// Widening: accelerates convergence on infinite-height lattices.
    ///
    /// Called instead of plain replacement once a pc's out-state has
    /// changed more than [`WIDEN_THRESHOLD`] times; `prev` is the last
    /// stored state, `next` the freshly computed one. Must return an
    /// upper bound of both. The default (return `next`) preserves the
    /// behaviour of finite-height analyses, whose ascending chains
    /// terminate on their own.
    fn widen(&self, _prev: &Self::State, next: Self::State) -> Self::State {
        next
    }
}

/// Number of times one pc's out-state may change before the engine
/// switches from plain joins to [`Analysis::widen`]. A small delay lets
/// short ascending chains (constant → small range) settle exactly before
/// ranges are jumped to widening thresholds.
pub const WIDEN_THRESHOLD: u32 = 4;

/// Fixpoint solution: the state before and after every instruction.
///
/// `None` means the pc was unreachable from the analysis entries (no facts
/// are derived there, and passes emit no diagnostics for dead code).
#[derive(Debug, Clone)]
pub struct Solution<S> {
    /// State immediately before each pc executes.
    pub before: Vec<Option<S>>,
    /// State immediately after each pc executes.
    pub after: Vec<Option<S>>,
}

impl<S> Solution<S> {
    /// The before-state at `pc`, if reachable.
    pub fn before_at(&self, pc: usize) -> Option<&S> {
        self.before.get(pc).and_then(|s| s.as_ref())
    }

    /// The after-state at `pc`, if reachable.
    pub fn after_at(&self, pc: usize) -> Option<&S> {
        self.after.get(pc).and_then(|s| s.as_ref())
    }
}

/// Runs `analysis` to fixpoint over the whole program.
///
/// Forward analyses start from pc 0; backward analyses treat every pc
/// without successors as a boundary exit.
pub fn solve<A: Analysis>(program: &Program, cfg: &Cfg, analysis: &A) -> Solution<A::State> {
    let entries: Vec<usize> = match analysis.direction() {
        Direction::Forward => {
            if program.is_empty() {
                Vec::new()
            } else {
                vec![0]
            }
        }
        Direction::Backward => (0..program.len())
            .filter(|&pc| cfg.succs(pc).is_empty())
            .collect(),
    };
    solve_region(program, cfg, analysis, &entries, None)
}

/// Runs `analysis` to fixpoint restricted to `region` (a set of pcs;
/// `None` = the whole program). Edges leaving the region are ignored;
/// `entries` are the region's boundary points (sources for forward,
/// sinks for backward).
pub fn solve_region<A: Analysis>(
    program: &Program,
    cfg: &Cfg,
    analysis: &A,
    entries: &[usize],
    region: Option<&[usize]>,
) -> Solution<A::State> {
    let len = program.len();
    let mut in_region = vec![region.is_none(); len];
    if let Some(r) = region {
        for &pc in r {
            in_region[pc] = true;
        }
    }
    let forward = analysis.direction() == Direction::Forward;

    let mut before: Vec<Option<A::State>> = vec![None; len];
    let mut after: Vec<Option<A::State>> = vec![None; len];
    let is_entry = {
        let mut v = vec![false; len];
        for &e in entries {
            v[e] = true;
        }
        v
    };

    let mut worklist: Vec<usize> = entries.to_vec();
    let mut queued = vec![false; len];
    for &e in entries {
        queued[e] = true;
    }
    let mut change_count = vec![0u32; len];

    while let Some(pc) = worklist.pop() {
        queued[pc] = false;
        if !in_region[pc] {
            continue;
        }
        // Join incoming states (preds for forward, succs for backward),
        // plus the boundary at entries.
        let sources: &[usize] = if forward {
            cfg.preds(pc)
        } else {
            cfg.succs(pc)
        };
        let mut incoming: Option<A::State> = is_entry[pc].then(|| analysis.boundary());
        for &s in sources {
            if !in_region[s] {
                continue;
            }
            let src_state = if forward { &after[s] } else { &before[s] };
            if let Some(st) = src_state {
                // The edge hook may refine the state along this edge, or
                // declare the edge infeasible (forward only).
                let refined = if forward {
                    let src_instr = program.fetch(s).expect("pc in range");
                    analysis.edge(s, src_instr, pc, st)
                } else {
                    Some(st.clone())
                };
                if let Some(st) = refined {
                    match &mut incoming {
                        Some(acc) => analysis.join(acc, &st),
                        None => incoming = Some(st),
                    }
                }
            }
        }
        let Some(incoming) = incoming else {
            continue; // nothing known yet; a source will requeue us
        };
        let instr = program.fetch(pc).expect("pc in range");
        let mut outgoing = analysis.transfer(pc, instr, &incoming);
        let (at_in, at_out) = if forward {
            (&mut before[pc], &mut after[pc])
        } else {
            (&mut after[pc], &mut before[pc])
        };
        if at_out.as_ref() != Some(&outgoing) {
            change_count[pc] += 1;
            if change_count[pc] > WIDEN_THRESHOLD {
                if let Some(prev) = at_out.as_ref() {
                    outgoing = analysis.widen(prev, outgoing);
                }
            }
        }
        let changed = at_out.as_ref() != Some(&outgoing);
        *at_in = Some(incoming);
        if changed {
            *at_out = Some(outgoing);
            let next: &[usize] = if forward {
                cfg.succs(pc)
            } else {
                cfg.preds(pc)
            };
            for &n in next {
                if in_region[n] && !queued[n] {
                    queued[n] = true;
                    worklist.push(n);
                }
            }
        }
    }

    Solution { before, after }
}

/// Bounded descending (narrowing) sweeps for a **forward** analysis,
/// refining a post-fixpoint [`Solution`] in place.
///
/// Widening overshoots (a loop counter widened to `+∞` even though the
/// loop exit bounds it); starting *from* a sound fixpoint, re-applying the
/// transfer functions in reverse post-order can only tighten states while
/// remaining sound. The sweep count is bounded (`sweeps`) because plain
/// descending iteration need not terminate on its own; each sweep stops
/// early when nothing changes.
///
/// `entries` must be the same entry pcs the solution was solved with.
///
/// # Panics
///
/// Panics if `analysis` is backward.
pub fn narrow<A: Analysis>(
    program: &Program,
    cfg: &Cfg,
    analysis: &A,
    entries: &[usize],
    sol: &mut Solution<A::State>,
    sweeps: usize,
) {
    assert_eq!(
        analysis.direction(),
        Direction::Forward,
        "narrowing is implemented for forward analyses only"
    );
    let is_entry = {
        let mut v = vec![false; program.len()];
        for &e in entries {
            if e < v.len() {
                v[e] = true;
            }
        }
        v
    };
    // Expand the block-level reverse post-order into instruction order.
    let order: Vec<usize> = cfg
        .rpo()
        .into_iter()
        .flat_map(|b| {
            let blk = &cfg.blocks()[b];
            blk.start..blk.end
        })
        .collect();
    for _ in 0..sweeps {
        let mut changed = false;
        for &pc in &order {
            // Only refine points the fixpoint reached: narrowing cannot
            // make dead code live.
            if sol.before[pc].is_none() {
                continue;
            }
            let mut incoming: Option<A::State> = is_entry[pc].then(|| analysis.boundary());
            for &s in cfg.preds(pc) {
                if let Some(st) = &sol.after[s] {
                    let src_instr = program.fetch(s).expect("pc in range");
                    if let Some(st) = analysis.edge(s, src_instr, pc, st) {
                        match &mut incoming {
                            Some(acc) => analysis.join(acc, &st),
                            None => incoming = Some(st),
                        }
                    }
                }
            }
            let Some(incoming) = incoming else {
                // Every incoming edge became infeasible: the point is
                // unreachable after refinement.
                if sol.before[pc].is_some() {
                    changed = true;
                }
                sol.before[pc] = None;
                sol.after[pc] = None;
                continue;
            };
            let instr = program.fetch(pc).expect("pc in range");
            let outgoing = analysis.transfer(pc, instr, &incoming);
            if sol.after[pc].as_ref() != Some(&outgoing)
                || sol.before[pc].as_ref() != Some(&incoming)
            {
                changed = true;
            }
            sol.before[pc] = Some(incoming);
            sol.after[pc] = Some(outgoing);
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::{ProgramBuilder, Reg};

    /// A trivial forward may-analysis: the set of pcs executed so far,
    /// as a bitmask over the first 64 pcs.
    struct Trace;
    impl Analysis for Trace {
        type State = u64;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> u64 {
            0
        }
        fn transfer(&self, pc: usize, _i: Instr, s: &u64) -> u64 {
            s | (1 << pc)
        }
        fn join(&self, into: &mut u64, other: &u64) {
            *into |= other;
        }
    }

    #[test]
    fn forward_fixpoint_propagates_around_back_edge() {
        // 0: ldi  1: addi  2: brlt->1  3: halt
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 0);
        let top = b.label();
        b.place(top);
        b.addi(Reg(0), Reg(0), 1);
        b.brlt(Reg(0), Reg(0), top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let sol = solve(&p, &cfg, &Trace);
        // At the loop head, the back-edge contributes pcs 1 and 2.
        assert_eq!(*sol.before_at(1).unwrap(), 0b0111);
        assert_eq!(*sol.before_at(3).unwrap(), 0b0111);
    }

    #[test]
    fn region_restriction_ignores_outside_edges() {
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 0).ldi(Reg(1), 1).ldi(Reg(2), 2).halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let region = vec![1, 2];
        let sol = solve_region(&p, &cfg, &Trace, &[1], Some(&region));
        assert!(sol.before_at(0).is_none());
        assert_eq!(*sol.after_at(2).unwrap(), 0b0110);
        assert!(sol.before_at(3).is_none());
    }
}
