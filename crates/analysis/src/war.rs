//! Write-after-read (idempotency) hazard analysis for roll-forward
//! regions.
//!
//! Roll-forward recovery (paper Section 4) re-executes code from the last
//! `mark_resume` with registers restored from the resume snapshot but
//! **memory as the first execution left it** (the data array *is* the
//! NVM). Re-execution is only sound if the region is idempotent over
//! memory: once a location has been read, writing it changes what a
//! re-execution would read — after an outage the recomputed result
//! silently diverges. Registers are exempt: they are restored from the
//! snapshot, so register WAR cannot corrupt a re-execution.
//!
//! The pass runs a forward fixpoint over each roll-forward region (the
//! pcs reachable from a `mark_resume` without crossing another marker,
//! `frame_done`, or `halt`) tracking:
//!
//! * **may-exposed reads** — locations read while not must-written, i.e.
//!   reads that observe pre-region memory on some path;
//! * **must-written locations** — written on *every* path from the region
//!   entry (reads of those observe region-internal values and are safe);
//! * a **must-covered** bit — set once every path has performed an
//!   indirect write; after a covering write loop (e.g. FFT's copy stage
//!   rewriting the whole output before the in-place butterflies), later
//!   indirect reads observe region-internal data and are not exposed.
//!
//! A write to a may-exposed location raises `NVP-W001`. Locations are
//! named like the taint pass: absolute addresses exactly, indirect
//! accesses as `(base, unique reaching def, offset)` symbols; symbol
//! matching is exact (aliasing between distinct symbols or between
//! symbolic and absolute accesses is not modeled).

use crate::cfg::Cfg;
use crate::dataflow::{solve_region, Analysis, Direction};
use crate::diag::{Diagnostic, LintCode};
use crate::lattice::{entry_defs, intersect_into, join_defs, sym_for, union_into, DefSite, Sym};
use crate::{Pass, PassContext};
use nvp_isa::{Instr, Program, NUM_REGS};
use std::collections::BTreeSet;

/// Dataflow state inside one roll-forward region.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WarState {
    defs: [DefSite; NUM_REGS],
    /// MAY: absolute addresses read while observing pre-region memory.
    exposed_abs: BTreeSet<u32>,
    /// MAY: symbolic locations read while observing pre-region memory.
    exposed_sym: BTreeSet<Sym>,
    /// MUST: absolute addresses written on every path so far.
    written_abs: BTreeSet<u32>,
    /// MUST: symbolic locations written on every path so far.
    written_sym: BTreeSet<Sym>,
    /// MUST: every path has performed at least one indirect write.
    ind_covered: bool,
}

impl WarState {
    fn entry() -> Self {
        WarState {
            defs: entry_defs(),
            exposed_abs: BTreeSet::new(),
            exposed_sym: BTreeSet::new(),
            written_abs: BTreeSet::new(),
            written_sym: BTreeSet::new(),
            ind_covered: false,
        }
    }

    fn sym(&self, base: nvp_isa::Reg, off: i32) -> Option<Sym> {
        sym_for(&self.defs, base, off)
    }
}

struct WarAnalysis;

impl Analysis for WarAnalysis {
    type State = WarState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> WarState {
        WarState::entry()
    }

    fn transfer(&self, pc: usize, instr: Instr, before: &WarState) -> WarState {
        let mut s = before.clone();
        match instr {
            Instr::Ld(_, a) if !before.written_abs.contains(&a) => {
                s.exposed_abs.insert(a);
            }
            Instr::LdInd(_, base, off) if !before.ind_covered => {
                if let Some(sym) = before.sym(base, off) {
                    if !before.written_sym.contains(&sym) {
                        s.exposed_sym.insert(sym);
                    }
                }
            }
            Instr::St(a, _) => {
                s.written_abs.insert(a);
            }
            Instr::StInd(base, off, _) => {
                if let Some(sym) = before.sym(base, off) {
                    s.written_sym.insert(sym);
                }
                s.ind_covered = true;
            }
            _ => {}
        }
        if let Some(d) = instr.dst() {
            s.defs[d.index()] = DefSite::Unique(pc);
        }
        s
    }

    fn join(&self, into: &mut WarState, other: &WarState) {
        join_defs(&mut into.defs, &other.defs);
        // MAY facts union; MUST facts intersect.
        union_into(&mut into.exposed_abs, &other.exposed_abs);
        union_into(&mut into.exposed_sym, &other.exposed_sym);
        intersect_into(&mut into.written_abs, &other.written_abs);
        intersect_into(&mut into.written_sym, &other.written_sym);
        into.ind_covered &= other.ind_covered;
    }
}

/// The WAR-hazard / idempotency pass.
#[derive(Debug, Default)]
pub struct WarPass;

impl Pass for WarPass {
    fn name(&self) -> &'static str {
        "war-hazard"
    }

    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
        check_war(cx.program, cx.cfg)
    }
}

/// Runs the WAR fixpoint over one region (`entry` plus the pcs in
/// `region`) and returns the pcs of non-idempotent writes, sorted.
///
/// This is the reusable core of [`check_war`]: placement synthesis
/// ([`crate::ckpt_place`]) calls it per candidate region to decide
/// re-executability, without committing to the marker-anchored region
/// shape or the diagnostic text.
pub fn region_hazards(program: &Program, cfg: &Cfg, entry: usize, region: &[usize]) -> Vec<usize> {
    let sol = solve_region(program, cfg, &WarAnalysis, &[entry], Some(region));
    let mut out = Vec::new();
    for &pc in region {
        let Some(s) = sol.before_at(pc) else { continue };
        match program.fetch(pc) {
            Some(Instr::St(a, _)) if s.exposed_abs.contains(&a) => out.push(pc),
            Some(Instr::StInd(base, off, _)) => {
                if let Some(sym) = s.sym(base, off) {
                    if s.exposed_sym.contains(&sym) {
                        out.push(pc);
                    }
                }
            }
            _ => {}
        }
    }
    out.sort_unstable();
    out
}

/// Runs the WAR-hazard pass directly, returning its diagnostics.
pub fn check_war(program: &Program, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (marker_pc, i) in program.iter() {
        let Instr::MarkResume(id) = i else {
            continue;
        };
        let entry = marker_pc + 1;
        if entry >= program.len() {
            continue;
        }
        // The region ends at the next marker / commit / halt: a later
        // mark_resume re-anchors recovery, and frame_done commits the
        // frame, so neither is re-executed from *this* marker.
        let is_stop = |pc: usize| {
            pc != entry
                && matches!(
                    program.fetch(pc),
                    Some(Instr::MarkResume(_) | Instr::FrameDone | Instr::Halt)
                )
        };
        let region: Vec<usize> = cfg
            .reachable_until(entry, is_stop)
            .into_iter()
            .filter(|&pc| !is_stop(pc))
            .collect();
        for pc in region_hazards(program, cfg, entry, &region) {
            let what = match program.fetch(pc) {
                Some(Instr::St(a, _)) => format!("[{a}]"),
                Some(Instr::StInd(base, off, _)) => format!("[{base}{off:+}]"),
                _ => unreachable!("hazards are stores"),
            };
            out.push(
                Diagnostic::at(
                    LintCode::WarHazard,
                    pc,
                    format!(
                        "non-idempotent write: {what} was read earlier in the \
                         roll-forward region of marker #{id} (pc {marker_pc}); \
                         re-execution after an outage reads the overwritten value"
                    ),
                )
                .with_context(program),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::{ProgramBuilder, Reg};

    fn run(p: &Program) -> Vec<Diagnostic> {
        check_war(p, &Cfg::build(p))
    }

    #[test]
    fn read_modify_write_same_absolute_address_is_a_hazard() {
        // The canonical accumulator: mem[50] += 1 is not idempotent.
        let mut b = ProgramBuilder::new();
        b.mark_resume(0)
            .ld(Reg(0), 50)
            .addi(Reg(0), Reg(0), 1)
            .st(50, Reg(0))
            .frame_done()
            .halt();
        let p = b.build().unwrap();
        let v = run(&p);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, LintCode::WarHazard);
        assert_eq!(v[0].pc, Some(3));
    }

    #[test]
    fn write_then_read_is_idempotent() {
        let mut b = ProgramBuilder::new();
        b.mark_resume(0)
            .ldi(Reg(0), 7)
            .st(50, Reg(0))
            .ld(Reg(1), 50)
            .st(51, Reg(1))
            .frame_done()
            .halt();
        let p = b.build().unwrap();
        assert!(run(&p).is_empty());
    }

    #[test]
    fn read_and_write_of_distinct_addresses_is_clean() {
        let mut b = ProgramBuilder::new();
        b.mark_resume(0)
            .ld(Reg(0), 10)
            .st(20, Reg(0))
            .frame_done()
            .halt();
        let p = b.build().unwrap();
        assert!(run(&p).is_empty());
    }

    #[test]
    fn symbolic_read_modify_write_is_a_hazard() {
        let mut b = ProgramBuilder::new();
        b.mark_resume(0)
            .ldi(Reg(2), 30)
            .ld_ind(Reg(0), Reg(2), 0)
            .addi(Reg(0), Reg(0), 5)
            .st_ind(Reg(2), 0, Reg(0))
            .frame_done()
            .halt();
        let p = b.build().unwrap();
        let v = run(&p);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].pc, Some(4));
    }

    #[test]
    fn covering_copy_loop_makes_inplace_update_safe() {
        // FFT's shape: a do-while copy loop writes out[i] for all i, then
        // an in-place stage reads and rewrites out[i]. The reads observe
        // region-internal values on every path, so the region is
        // idempotent.
        let mut b = ProgramBuilder::new();
        let (i, n, v) = (Reg(0), Reg(1), Reg(2));
        b.mark_resume(0);
        b.ldi(i, 0).ldi(n, 8);
        let copy = b.label();
        b.place(copy);
        b.ld_ind(v, i, 100) // read in[i]
            .st_ind(i, 200, v) // write out[i]
            .addi(i, i, 1)
            .brlt(i, n, copy);
        // In-place stage: out[j] = out[j] * 2.
        b.ldi(i, 0);
        let upd = b.label();
        b.place(upd);
        b.ld_ind(v, i, 200)
            .addi(v, v, 0)
            .st_ind(i, 200, v)
            .addi(i, i, 1)
            .brlt(i, n, upd);
        b.frame_done().halt();
        let p = b.build().unwrap();
        assert!(run(&p).is_empty());
    }

    #[test]
    fn hazard_across_loop_back_edge_detected() {
        // First iteration writes [60]; the loop then *reads* [60] at the
        // top of the next iteration before rewriting it — but along the
        // entry path the read observes pre-region memory only if the
        // write hasn't happened. Here the read comes first in program
        // order, so every iteration's write hits a location the entry
        // path has read: a hazard the linear scan would also need the
        // back-edge to order correctly.
        let mut b = ProgramBuilder::new();
        let (x, bound) = (Reg(0), Reg(1));
        b.mark_resume(0).ldi(x, 0).ldi(bound, 4);
        let top = b.label();
        b.place(top);
        b.ld(Reg(2), 60)
            .addi(Reg(2), Reg(2), 1)
            .st(60, Reg(2))
            .addi(x, x, 1)
            .brlt(x, bound, top);
        b.frame_done().halt();
        let p = b.build().unwrap();
        let v = run(&p);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, LintCode::WarHazard);
    }

    #[test]
    fn region_ends_at_frame_done() {
        // The write after frame_done belongs to no roll-forward region.
        let mut b = ProgramBuilder::new();
        b.mark_resume(0)
            .ld(Reg(0), 10)
            .frame_done()
            .st(10, Reg(0))
            .halt();
        let p = b.build().unwrap();
        assert!(run(&p).is_empty());
    }
}
