//! Backup-liveness: which architectural state must a backup persist?
//!
//! A power emergency can interrupt the program at any pc, and the backup
//! must persist enough state for execution to continue after restore. A
//! register that is dead at the interruption point (rewritten before any
//! read on every path) contributes nothing to the continuation — skipping
//! it shrinks the backup, and backup energy is the dominant overhead of
//! an NVP (20–33 % of income, paper Section 3.2). The sim consumes
//! [`BackupLiveness::live_at`] through its `BackupScope::LiveOnly` option;
//! `nvp-lint` reports the live sets at resume markers (`NVP-I001`) and
//! flags resume loop-variables that are never read (`NVP-W002`) — their
//! backed-up values can never influence resume matching or execution.

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, LintCode};
use crate::liveness::{liveness, Liveness};
use crate::{Pass, PassContext};
use nvp_isa::{Instr, Program, NUM_REGS};

/// Per-pc live-register masks with resume-point summaries.
#[derive(Debug, Clone)]
pub struct BackupLiveness {
    live_in: Vec<u16>,
    /// `(pc, live mask)` for every `mark_resume` in the program.
    pub resume_points: Vec<(usize, u16)>,
}

impl BackupLiveness {
    /// Computes backup-liveness for `program`.
    pub fn compute(program: &Program) -> BackupLiveness {
        let cfg = Cfg::build(program);
        let Liveness { live_in, .. } = liveness(program, &cfg);
        let resume_points = program
            .iter()
            .filter_map(|(pc, i)| match i {
                Instr::MarkResume(_) => Some((pc, live_in[pc])),
                _ => None,
            })
            .collect();
        BackupLiveness {
            live_in,
            resume_points,
        }
    }

    /// Registers that must be persisted by a backup taken just before the
    /// instruction at `pc` executes. Out-of-range or unreachable pcs
    /// conservatively report all registers live.
    pub fn live_at(&self, pc: usize) -> u16 {
        match self.live_in.get(pc) {
            Some(&m) => m,
            None => u16::MAX,
        }
    }

    /// Fraction of the register file live at `pc` (`0.0..=1.0`).
    pub fn live_fraction(&self, pc: usize) -> f64 {
        f64::from(self.live_at(pc).count_ones()) / NUM_REGS as f64
    }

    /// The largest live set across all pcs (the worst-case backup).
    pub fn max_live(&self) -> u16 {
        self.live_in.iter().fold(0, |acc, &m| acc | m)
    }
}

/// The backup-liveness pass.
#[derive(Debug, Default)]
pub struct BackupLivenessPass;

impl Pass for BackupLivenessPass {
    fn name(&self) -> &'static str {
        "backup-liveness"
    }

    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
        let bl = BackupLiveness::compute(cx.program);
        let mut out = Vec::new();
        // Registers read anywhere in the program.
        let mut read_anywhere: u16 = 0;
        for (_, i) in cx.program.iter() {
            for r in i.srcs() {
                read_anywhere |= 1 << r.0;
            }
        }
        let dead_loop_vars = cx.program.loop_var_mask() & !read_anywhere;
        for r in 0..NUM_REGS as u8 {
            if dead_loop_vars & (1 << r) != 0 {
                out.push(Diagnostic::program_level(
                    LintCode::DeadResumeReg,
                    format!(
                        "resume loop-variable r{r} is never read: its backed-up value \
                         cannot influence resume matching and wastes backup energy"
                    ),
                ));
            }
        }
        for &(pc, mask) in &bl.resume_points {
            out.push(Diagnostic::at(
                LintCode::BackupLiveSet,
                pc,
                format!(
                    "resume point backs up {} of {} registers (mask {mask:#06x})",
                    mask.count_ones(),
                    NUM_REGS
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalysisConfig;
    use nvp_isa::{ProgramBuilder, Reg};

    #[test]
    fn live_sets_shrink_where_registers_are_dead() {
        // 0: mark_resume  1: ldi r0  2: st [5],r0  3: frame_done  4: halt
        let mut b = ProgramBuilder::new();
        b.mark_resume(0)
            .ldi(Reg(0), 1)
            .st(5, Reg(0))
            .frame_done()
            .halt();
        let p = b.build().unwrap();
        let bl = BackupLiveness::compute(&p);
        assert_eq!(bl.live_at(0), 0); // r0 redefined before any read
        assert_eq!(bl.live_at(2), 1 << 0);
        assert_eq!(bl.live_at(4), 0);
        assert_eq!(bl.resume_points, vec![(0, 0)]);
        assert!(bl.live_fraction(2) > 0.0);
    }

    #[test]
    fn out_of_range_pc_is_conservative() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let bl = BackupLiveness::compute(&b.build().unwrap());
        assert_eq!(bl.live_at(99), u16::MAX);
    }

    #[test]
    fn dead_loop_var_flagged_live_one_silent() {
        let run = |dead: bool| {
            let mut b = ProgramBuilder::new();
            let lv = Reg(9);
            b.mark_loop_var(lv);
            b.mark_resume(0);
            b.ldi(Reg(0), 0).ldi(Reg(1), 3);
            let top = b.label();
            b.place(top);
            if dead {
                b.ldi(lv, 1); // written, never read
            } else {
                b.mov(lv, Reg(0)).addi(Reg(2), lv, 0); // read back
            }
            b.addi(Reg(0), Reg(0), 1);
            b.brlt(Reg(0), Reg(1), top);
            b.frame_done().halt();
            let p = b.build().unwrap();
            let cfg = Cfg::build(&p);
            let config = AnalysisConfig::default();
            let cx = PassContext {
                program: &p,
                cfg: &cfg,
                config: &config,
            };
            BackupLivenessPass.run(&cx)
        };
        let dead = run(true);
        assert!(dead
            .iter()
            .any(|d| d.code == LintCode::DeadResumeReg && d.message.contains("r9")));
        let live = run(false);
        assert!(live.iter().all(|d| d.code != LintCode::DeadResumeReg));
        // Both still report the informational live-set summary.
        assert!(live.iter().any(|d| d.code == LintCode::BackupLiveSet));
    }
}
