//! Checkpoint placement synthesis: the checkpoint set as a decision
//! variable.
//!
//! PR 6 certified the energy of the *declared* checkpoint regions; this
//! pass turns the placement itself into a search problem. A candidate
//! placement is the declared checkpoint set plus any subset of basic
//! block entry pcs ([`RegionKind::Synthetic`]). A placement is
//! **feasible** when every region it induces
//!
//! 1. is provably re-executable — the WAR pass finds no non-idempotent
//!    write inside it ([`crate::war::region_hazards`]), and
//! 2. fits the capacitor — its WCEC ceiling is bounded and at most
//!    [`EnergyBudget::usable_nj`] at every governor bitwidth in the
//!    declared range (note a checkpoint inside a loop body cuts the back
//!    edge and can bound a previously-unbounded region).
//!
//! Among feasible placements the search greedily minimizes an expected
//! backup cost: the loop-trip-weighted average over pcs of the scoped
//! backup energy of that pc's `live ∩ dirty` mask
//! ([`crate::dirty`]), plus a commit term charging each checkpoint
//! crossing (loop-trip-weighted — a checkpoint in a hot loop is crossed
//! every iteration) for persisting the mask arriving at it. Emergency
//! backups and crossings have different dynamic frequencies; weighting
//! both by static execution weight is a deliberate modeling choice the
//! certificate records (DESIGN.md §12).
//!
//! The result is a machine-checkable [`Synthesis`] certificate rendered
//! through the shared [`Json`] serializer, and the per-pc masks the
//! simulator consumes as `BackupScope::LiveDirty` / `CheckpointPlan`.

use crate::cfg::Cfg;
use crate::cost_model::{CostModel, EnergyBudget};
use crate::diag::{Diagnostic, Json, LintCode};
use crate::dirty::{DirtyAnalyzer, MemDirty};
use crate::loop_bound::{loop_report, LoopReport, TripBound};
use crate::safe_bits::DeclaredBits;
use crate::war::region_hazards;
use crate::wcec::{declared_checkpoints, solve, solve_min, RegionKind};
use crate::{Pass, PassContext};
use nvp_isa::{Instr, Program, NUM_REGS};

/// Static execution weight assumed for a loop whose trip count could
/// not be bounded.
const UNBOUNDED_TRIP_WEIGHT: f64 = 256.0;
/// Cap on any single loop's contribution to a pc's execution weight.
const TRIP_WEIGHT_CAP: f64 = 10_000.0;

/// Tunables of the placement search.
#[derive(Debug, Clone)]
pub struct CkptOptions {
    /// Platform envelope (capacitor, backup policy, energy model).
    pub budget: EnergyBudget,
    /// Lowest governor bitwidth the placement must be feasible at.
    pub bits_lo: u8,
    /// Highest governor bitwidth (costs are scored at this width).
    pub bits_hi: u8,
    /// Total data-memory words (bounds degraded store ranges).
    pub mem_words: usize,
    /// Maximum synthetic checkpoints the greedy search may add.
    pub max_added: usize,
    /// `NVP-I003` fires when the synthesized placement saves at least
    /// this percentage of expected backup energy vs. the declared one.
    pub min_savings_pct: f64,
}

impl Default for CkptOptions {
    fn default() -> Self {
        CkptOptions {
            budget: EnergyBudget::default_platform(),
            bits_lo: 1,
            bits_hi: 8,
            mem_words: 1024,
            max_added: 6,
            min_savings_pct: 10.0,
        }
    }
}

/// One region's entry in a placement certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionCert {
    /// Checkpoint pc the region starts at.
    pub start_pc: usize,
    /// Why that pc is a checkpoint.
    pub kind: RegionKind,
    /// Number of pcs in the region.
    pub len: usize,
    /// Union of registers any execution of the region may write.
    pub dirty_regs: u16,
    /// Possibly-written memory words (`None` = degraded to whole
    /// memory).
    pub mem_dirty_words: Option<usize>,
    /// Pcs of non-idempotent writes; empty = provably re-executable.
    pub hazard_pcs: Vec<usize>,
    /// WCEC ceiling at the *highest* bitwidth in range, in nJ
    /// (`None` = unbounded).
    pub wcec_hi_nj: Option<f64>,
    /// Proven minimum traversal cost at the highest bitwidth, in nJ.
    pub min_nj: f64,
}

/// One evaluated placement: its regions, masks, and scalar cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementEval {
    /// The checkpoint set, sorted by pc.
    pub checkpoints: Vec<(usize, RegionKind)>,
    /// Per-region certificates.
    pub regions: Vec<RegionCert>,
    /// Per-pc `live ∩ dirty` backup masks under this placement.
    pub masks: Vec<u16>,
    /// Loop-trip-weighted expected emergency-backup energy, in nJ.
    pub expected_backup_nj: f64,
    /// Loop-trip-weighted checkpoint-crossing commit energy, in nJ
    /// (amortized over the same weight total).
    pub crossing_nj: f64,
    /// Bitwidths in the declared range at which some region is
    /// unbounded or exceeds the usable capacitor energy.
    pub infeasible_bits: Vec<u8>,
}

impl PlacementEval {
    /// The scalar cost the search minimizes.
    pub fn cost_nj(&self) -> f64 {
        self.expected_backup_nj + self.crossing_nj
    }

    /// Are all regions provably re-executable?
    pub fn reexecutable(&self) -> bool {
        self.regions.iter().all(|r| r.hazard_pcs.is_empty())
    }

    /// Re-executable at every region and WCEC-feasible at every
    /// bitwidth in range.
    pub fn feasible(&self) -> bool {
        self.reexecutable() && self.infeasible_bits.is_empty()
    }
}

/// The full synthesis result: declared vs. synthesized placement.
#[derive(Debug, Clone, PartialEq)]
pub struct Synthesis {
    /// Lowest bitwidth feasibility was checked at.
    pub bits_lo: u8,
    /// Highest bitwidth (cost scoring width).
    pub bits_hi: u8,
    /// The program's declared checkpoint set, evaluated.
    pub declared: PlacementEval,
    /// The best placement the search found (the declared one if no
    /// addition helped).
    pub synthesized: PlacementEval,
    /// Expected-backup-cost saving of synthesized vs. declared, in
    /// percent (0 when the declared cost is 0).
    pub savings_pct: f64,
}

/// Per-pc static execution weight: the product of the trip bounds of
/// the loops containing the pc (unbounded loops contribute a fixed
/// weight, each factor capped).
fn pc_weights(cfg: &Cfg, loops: &LoopReport, len: usize) -> Vec<f64> {
    let mut w = vec![1.0f64; len];
    for l in &loops.loops {
        let factor = match l.bound {
            TripBound::Bounded(n) => (n.max(1) as f64).min(TRIP_WEIGHT_CAP),
            TripBound::Unbounded => UNBOUNDED_TRIP_WEIGHT,
        };
        for &b in &l.members {
            for pc in cfg.blocks()[b].pcs() {
                w[pc] = (w[pc] * factor).min(TRIP_WEIGHT_CAP * TRIP_WEIGHT_CAP);
            }
        }
    }
    w
}

/// Evaluates one placement end to end.
#[allow(clippy::too_many_arguments)] // one-shot internal scorer
fn evaluate(
    program: &Program,
    cfg: &Cfg,
    opts: &CkptOptions,
    analyzer: &DirtyAnalyzer<'_>,
    loops_per_bits: &[(u8, LoopReport, CostModel)],
    weights: &[f64],
    checkpoints: &[(usize, RegionKind)],
) -> PlacementEval {
    let len = program.len();
    let dirty = analyzer.report_at(checkpoints);
    let mut is_checkpoint = vec![false; len];
    for &(pc, _) in checkpoints {
        if pc < len {
            is_checkpoint[pc] = true;
        }
    }

    // Per-region certificates at the scoring width (the last entry of
    // `loops_per_bits` is bits_hi), plus feasibility across the range.
    let mut regions = Vec::with_capacity(dirty.regions.len());
    let mut infeasible_bits = Vec::new();
    for &(bits, ref loops, ref cost) in loops_per_bits {
        let usable = opts.budget.usable_nj(bits);
        let mut feasible_here = true;
        for rd in &dirty.regions {
            let mut active = vec![false; len];
            for &pc in &rd.pcs {
                active[pc] = true;
            }
            let ceiling = solve(
                program,
                cfg,
                loops,
                cost,
                &active,
                rd.start_pc,
                true,
                |pc| is_checkpoint[pc],
            );
            if !(ceiling.is_finite() && ceiling <= usable) {
                feasible_here = false;
            }
            if bits == opts.bits_hi {
                let min_nj = solve_min(
                    program,
                    cfg,
                    loops,
                    cost,
                    &active,
                    rd.start_pc,
                    true,
                    |pc| is_checkpoint[pc],
                );
                let region: Vec<usize> = rd
                    .pcs
                    .iter()
                    .copied()
                    .filter(|&pc| pc == rd.start_pc || !is_checkpoint[pc])
                    .collect();
                let hazard_pcs = region_hazards(program, cfg, rd.start_pc, &region);
                regions.push(RegionCert {
                    start_pc: rd.start_pc,
                    kind: rd.kind,
                    len: rd.pcs.len(),
                    dirty_regs: rd.dirty_regs,
                    mem_dirty_words: match &rd.mem {
                        MemDirty::Words(w) => Some(w.len()),
                        MemDirty::Whole => None,
                    },
                    hazard_pcs,
                    wcec_hi_nj: ceiling.is_finite().then_some(ceiling),
                    min_nj,
                });
            }
        }
        if !feasible_here {
            infeasible_bits.push(bits);
        }
    }

    // Scalar cost at the scoring width.
    let cost_hi = &loops_per_bits.last().expect("at least one bits setting").2;
    let policy = opts.budget.backup_policy;
    let scoped = |mask: u16| {
        opts.budget
            .model
            .backup_energy_scoped(
                policy,
                cost_hi.bits,
                f64::from(mask.count_ones()) / NUM_REGS as f64,
            )
            .as_nj()
    };
    let weight_total: f64 = weights.iter().sum::<f64>().max(1.0);
    let expected_backup_nj = (0..len)
        .map(|pc| weights[pc] * scoped(dirty.mask_at(pc)))
        .sum::<f64>()
        / weight_total;
    let crossing_nj = checkpoints
        .iter()
        .filter(|&&(pc, _)| pc < len)
        .map(|&(pc, _)| weights[pc] * scoped(dirty.mask_at(pc)))
        .sum::<f64>()
        / weight_total;

    PlacementEval {
        checkpoints: checkpoints.to_vec(),
        regions,
        masks: dirty.masks().to_vec(),
        expected_backup_nj,
        crossing_nj,
        infeasible_bits,
    }
}

/// Candidate synthetic checkpoint pcs: basic-block entries that are not
/// already checkpoints and whose instruction can meaningfully anchor a
/// re-entry (not a terminator or commit).
fn candidates(program: &Program, cfg: &Cfg, declared: &[(usize, RegionKind)]) -> Vec<usize> {
    let is_declared = |pc: usize| declared.iter().any(|&(p, _)| p == pc);
    cfg.blocks()
        .iter()
        .map(|b| b.pcs().start)
        .filter(|&pc| !is_declared(pc))
        .filter(|&pc| {
            !matches!(
                program.fetch(pc),
                None | Some(Instr::Halt | Instr::FrameDone | Instr::MarkResume(_))
            )
        })
        .collect()
}

/// Runs the placement search: evaluates the declared checkpoint set,
/// then greedily adds synthetic checkpoints while additions repair
/// feasibility or reduce the expected backup cost.
pub fn synthesize(program: &Program, cfg: &Cfg, opts: &CkptOptions) -> Synthesis {
    let (lo, hi) = (opts.bits_lo.clamp(1, 8), opts.bits_hi.clamp(1, 8));
    let (lo, hi) = (lo.min(hi), hi.max(lo));
    let analyzer = DirtyAnalyzer::new(program, cfg, lo, opts.mem_words);
    let loops_per_bits: Vec<(u8, LoopReport, CostModel)> = (lo..=hi)
        .map(|bits| {
            (
                bits,
                loop_report(program, cfg, bits),
                CostModel::new(&opts.budget.model, bits),
            )
        })
        .collect();
    let weights = pc_weights(
        cfg,
        &loops_per_bits.last().expect("nonempty range").1,
        program.len(),
    );

    let declared_set = declared_checkpoints(program);
    let eval = |ckpts: &[(usize, RegionKind)]| {
        evaluate(
            program,
            cfg,
            opts,
            &analyzer,
            &loops_per_bits,
            &weights,
            ckpts,
        )
    };
    let declared = eval(&declared_set);

    // Greedy ascent: (infeasibility, cost) lexicographic. Trials whose
    // regions are not all provably re-executable are rejected outright —
    // splitting a region can *create* WAR hazards (a read that was
    // preceded by a write in the larger region becomes exposed when
    // re-entry moves past that write), and such a placement is unsound
    // no matter how much backup energy it saves.
    let key = |e: &PlacementEval| (e.infeasible_bits.len(), e.cost_nj());
    let better = |a: (usize, f64), b: (usize, f64)| a.0 < b.0 || (a.0 == b.0 && a.1 < b.1 - 1e-12);

    let cands = candidates(program, cfg, &declared_set);
    let mut current = declared.clone();
    for _ in 0..opts.max_added {
        let cur_key = key(&current);
        let mut best: Option<PlacementEval> = None;
        for &c in &cands {
            if current.checkpoints.iter().any(|&(pc, _)| pc == c) {
                continue;
            }
            let mut trial_set = current.checkpoints.clone();
            trial_set.push((c, RegionKind::Synthetic));
            trial_set.sort_by_key(|&(pc, _)| pc);
            let trial = eval(&trial_set);
            if !trial.reexecutable() {
                continue;
            }
            let tk = key(&trial);
            if better(tk, cur_key) && best.as_ref().is_none_or(|b| better(tk, key(b))) {
                best = Some(trial);
            }
        }
        match best {
            Some(b) => current = b,
            None => break,
        }
    }

    let savings_pct = if declared.cost_nj() > 0.0 {
        (declared.cost_nj() - current.cost_nj()) / declared.cost_nj() * 100.0
    } else {
        0.0
    };
    Synthesis {
        bits_lo: lo,
        bits_hi: hi,
        declared,
        synthesized: current,
        savings_pct,
    }
}

fn placement_json(e: &PlacementEval) -> Json {
    let mut obj = Json::obj();
    obj.set(
        "checkpoints",
        Json::Arr(
            e.checkpoints
                .iter()
                .map(|&(pc, kind)| {
                    let mut c = Json::obj();
                    c.set("pc", Json::Num(pc as f64))
                        .set("kind", Json::str(kind.to_string()));
                    c
                })
                .collect(),
        ),
    )
    .set("expected_backup_nj", Json::num(e.expected_backup_nj))
    .set("crossing_nj", Json::num(e.crossing_nj))
    .set("cost_nj", Json::num(e.cost_nj()))
    .set("reexecutable", Json::Bool(e.reexecutable()))
    .set(
        "infeasible_bits",
        Json::Arr(
            e.infeasible_bits
                .iter()
                .map(|&b| Json::Num(f64::from(b)))
                .collect(),
        ),
    )
    .set(
        "regions",
        Json::Arr(
            e.regions
                .iter()
                .map(|r| {
                    let mut o = Json::obj();
                    o.set("start_pc", Json::Num(r.start_pc as f64))
                        .set("kind", Json::str(r.kind.to_string()))
                        .set("len", Json::Num(r.len as f64))
                        .set("dirty_regs", Json::str(format!("{:#06x}", r.dirty_regs)))
                        .set(
                            "mem_dirty_words",
                            match r.mem_dirty_words {
                                Some(n) => Json::Num(n as f64),
                                None => Json::Null,
                            },
                        )
                        .set(
                            "hazard_pcs",
                            Json::Arr(r.hazard_pcs.iter().map(|&p| Json::Num(p as f64)).collect()),
                        )
                        .set(
                            "wcec_hi_nj",
                            match r.wcec_hi_nj {
                                Some(nj) => Json::num(nj),
                                None => Json::Null,
                            },
                        )
                        .set("min_nj", Json::num(r.min_nj));
                    o
                })
                .collect(),
        ),
    );
    obj
}

impl Synthesis {
    /// The machine-checkable placement certificate, rendered through
    /// the shared serializer (round-trips via [`Json::parse`]).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("schema", Json::str("nvp-ckpt-cert-v1"))
            .set("bits_lo", Json::Num(f64::from(self.bits_lo)))
            .set("bits_hi", Json::Num(f64::from(self.bits_hi)))
            .set("declared", placement_json(&self.declared))
            .set("synthesized", placement_json(&self.synthesized))
            .set("savings_pct", Json::num(self.savings_pct));
        obj
    }
}

/// The checkpoint-synthesis lint pass (`nvp-lint --checkpoint`).
///
/// Not part of [`crate::default_passes`]: like the WCEC pass it is
/// opt-in, since placement search is considerably more expensive than
/// the safety lints.
#[derive(Debug)]
pub struct CkptPass {
    /// Platform envelope feasibility is judged against.
    pub budget: EnergyBudget,
    /// `NVP-I003` savings threshold, in percent.
    pub min_savings_pct: f64,
}

impl Default for CkptPass {
    fn default() -> Self {
        CkptPass {
            budget: EnergyBudget::default_platform(),
            min_savings_pct: 10.0,
        }
    }
}

impl CkptPass {
    fn options(&self, cx: &PassContext<'_>) -> CkptOptions {
        let (lo, hi) = match cx.config.declared {
            Some(DeclaredBits { minbits, maxbits }) => (minbits, maxbits),
            None => (1, 8),
        };
        CkptOptions {
            budget: self.budget.clone(),
            bits_lo: lo,
            bits_hi: hi,
            mem_words: cx.config.mem_words.unwrap_or(1024),
            min_savings_pct: self.min_savings_pct,
            ..CkptOptions::default()
        }
    }

    /// Runs the synthesis this pass lints (exposed so the lint driver
    /// can export the certificate it judged).
    pub fn synthesis(&self, cx: &PassContext<'_>) -> Synthesis {
        synthesize(cx.program, cx.cfg, &self.options(cx))
    }
}

impl Pass for CkptPass {
    fn name(&self) -> &'static str {
        "checkpoint-placement"
    }

    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
        let synth = self.synthesis(cx);
        let mut out = Vec::new();
        for r in &synth.declared.regions {
            if let Some(&first) = r.hazard_pcs.first() {
                out.push(
                    Diagnostic::at(
                        LintCode::DirtyNotReexecutable,
                        first,
                        format!(
                            "declared region at pc {} ({}) is not provably re-executable \
                             under its live∩dirty mask: {} WAR hazard(s) at pcs {:?}",
                            r.start_pc,
                            r.kind,
                            r.hazard_pcs.len(),
                            r.hazard_pcs
                        ),
                    )
                    .with_context(cx.program),
                );
            }
        }
        if !synth.synthesized.infeasible_bits.is_empty() {
            out.push(Diagnostic::program_level(
                LintCode::NoFeasiblePlacement,
                format!(
                    "no re-executable, WCEC-feasible checkpoint placement found at \
                     bitwidth(s) {:?} (searched {} synthetic candidates on top of the \
                     declared set)",
                    synth.synthesized.infeasible_bits,
                    synth.synthesized.checkpoints.len() - synth.declared.checkpoints.len()
                ),
            ));
        }
        if synth.savings_pct >= self.min_savings_pct {
            out.push(Diagnostic::program_level(
                LintCode::PlacementSavings,
                format!(
                    "synthesized placement ({} checkpoints, +{} synthetic) cuts expected \
                     backup energy by {:.1}% vs. declared ({:.2} → {:.2} nJ)",
                    synth.synthesized.checkpoints.len(),
                    synth.synthesized.checkpoints.len() - synth.declared.checkpoints.len(),
                    synth.savings_pct,
                    synth.declared.cost_nj(),
                    synth.synthesized.cost_nj()
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_with, AnalysisConfig};
    use nvp_isa::{ProgramBuilder, Reg};

    fn loopy_program() -> Program {
        // Prologue, then a hot bounded loop writing out[i], then commit.
        let mut b = ProgramBuilder::new();
        let (i, n, v) = (Reg(0), Reg(1), Reg(2));
        b.mark_resume(0).ldi(i, 0).ldi(n, 64);
        let top = b.label();
        b.place(top);
        b.ld_ind(v, i, 0)
            .addi(v, v, 1)
            .st_ind(i, 128, v)
            .addi(i, i, 1)
            .brlt(i, n, top);
        b.frame_done().halt();
        b.build().unwrap()
    }

    #[test]
    fn synthesis_reduces_cost_on_a_loopy_program() {
        let p = loopy_program();
        let cfg = Cfg::build(&p);
        let opts = CkptOptions {
            mem_words: 256,
            bits_lo: 4,
            bits_hi: 8,
            ..CkptOptions::default()
        };
        let s = synthesize(&p, &cfg, &opts);
        assert!(s.declared.reexecutable(), "declared regions hazard-free");
        assert!(
            s.synthesized.cost_nj() <= s.declared.cost_nj() + 1e-9,
            "search must never return something worse: {} vs {}",
            s.synthesized.cost_nj(),
            s.declared.cost_nj()
        );
        // Masks are pc-indexed over the whole program.
        assert_eq!(s.synthesized.masks.len(), p.len());
    }

    #[test]
    fn certificate_round_trips_through_shared_serializer() {
        let p = loopy_program();
        let cfg = Cfg::build(&p);
        let s = synthesize(
            &p,
            &cfg,
            &CkptOptions {
                mem_words: 256,
                ..CkptOptions::default()
            },
        );
        let json = s.to_json();
        let text = json.render();
        let back = Json::parse(&text).expect("certificate parses");
        assert_eq!(back, json);
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("nvp-ckpt-cert-v1")
        );
        let declared = back.get("declared").expect("declared placement");
        assert!(declared.get("regions").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn war_hazard_region_raises_e007() {
        // mem[50] += 1 inside the roll-forward region: not re-executable.
        let mut b = ProgramBuilder::new();
        b.mark_resume(0)
            .ld(Reg(0), 50)
            .addi(Reg(0), Reg(0), 1)
            .st(50, Reg(0))
            .frame_done()
            .halt();
        let p = b.build().unwrap();
        let report = analyze_with(
            &p,
            &AnalysisConfig::default(),
            &[Box::new(CkptPass::default()) as Box<dyn Pass>],
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::DirtyNotReexecutable));
    }

    #[test]
    fn clean_program_has_no_errors_from_the_pass() {
        let p = loopy_program();
        let report = analyze_with(
            &p,
            &AnalysisConfig::default(),
            &[Box::new(CkptPass::default()) as Box<dyn Pass>],
        );
        assert!(!report.has_errors(), "{:#?}", report.diagnostics);
    }
}
