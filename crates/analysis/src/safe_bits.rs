//! Statically proven safe bitwidth floors, derived from the coupled
//! interval / error-bound analysis ([`crate::error_bound`]).
//!
//! A governor setting `bits` is **safe** at an instruction when reducing
//! ALU/memory precision to `bits` cannot change the program's control
//! flow or memory addressing relative to the exact run:
//!
//! * a branch operand's worst-case deviation must be zero
//!   (otherwise the approximate run can take a different path —
//!   `NVP-E004`);
//! * an indirect base register must be deviation-free, or — if the
//!   kernel has declared it sanitized (clamped) — its address range must
//!   be provably inside data memory (`NVP-E004`);
//! * no branch operand or indirect base may carry a value the concrete
//!   machine itself may have wrapped producing (`NVP-E005`; wraparound
//!   is unsafe at *every* bitwidth, including 8).
//!
//! Floors are reported per pc, per basic block, and per program; the
//! program floor feeds the sim's `StaticBitsFloor` governor clamp, and
//! `nvp-lint --bitwidth` prints the per-block table. Safety is monotone
//! in `bits` (error bounds shrink as precision grows), so the floor for
//! the whole family `bits ≥ floor` is established by one analysis per
//! candidate setting.

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, LintCode};
use crate::error_bound::{dev_bound, solve_error_bounds, ApproxState};
use crate::{Pass, PassContext};
use nvp_isa::{Instr, Program, Reg};

/// A kernel's declared governor operating range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeclaredBits {
    /// Lowest bits the governor may select for this kernel.
    pub minbits: u8,
    /// Highest bits the governor may select.
    pub maxbits: u8,
}

impl DeclaredBits {
    /// Builds a declaration, clamping into `1..=8` and ordering the pair.
    pub fn new(minbits: u8, maxbits: u8) -> DeclaredBits {
        let minbits = minbits.clamp(1, 8);
        let maxbits = maxbits.clamp(minbits, 8);
        DeclaredBits { minbits, maxbits }
    }
}

/// Sentinel floor meaning "unsafe even at full precision" (a wraparound
/// hazard the governor cannot fix).
pub const NEVER_SAFE: u8 = 9;

/// Why one pc rejects a bit setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// A branch operand may deviate: control flow can diverge.
    BranchDeviation(Reg),
    /// An indirect base may deviate with no sanitization declared.
    AddressDeviation(Reg),
    /// A sanitized indirect base deviates and its address range is not
    /// provably inside data memory.
    AddressRange(Reg),
    /// The operand may stem from concrete integer wraparound.
    Wraparound(Reg),
}

/// One rejected `(pc, bits)` combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hazard {
    /// Instruction location.
    pub pc: usize,
    /// What goes wrong there.
    pub kind: HazardKind,
}

/// Safe-bits floor of one basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockFloor {
    /// First pc of the block.
    pub start: usize,
    /// One past the last pc.
    pub end: usize,
    /// Minimum safe bits over the block's instructions (1..=8, or
    /// [`NEVER_SAFE`]).
    pub floor: u8,
}

/// The full bitwidth analysis result for one program.
#[derive(Debug, Clone)]
pub struct BitwidthReport {
    /// Per-pc floor (1..=8, or [`NEVER_SAFE`]); index = pc. Unreachable
    /// pcs get floor 1.
    pub pc_floor: Vec<u8>,
    /// Per-basic-block floors, in block order.
    pub block_floors: Vec<BlockFloor>,
    /// The whole-program floor: max over all pcs.
    pub program_floor: u8,
    /// Worst-case deviation of values in the approximable output region
    /// at program exit, per governor setting (`output_err[b-1]` = bound
    /// at `bits = b`; `u64::MAX` = unbounded). Non-increasing in `b`: a
    /// solve at floor `b` covers every run at bits ≥ `b`, so each entry
    /// is also capped by the entries below it.
    pub output_err: [u64; 8],
    /// Hazards observed at `bits = 1` (the most permissive setting) —
    /// the reasons the floor is above 1, for diagnostics.
    pub hazards: Vec<Hazard>,
}

/// Collects the hazards of `program` at one candidate `bits` setting.
pub fn hazards_at(
    program: &Program,
    cfg: &Cfg,
    sanitized: u16,
    mem_words: Option<usize>,
    bits: u8,
) -> Vec<Hazard> {
    analyze_at(program, cfg, sanitized, mem_words, bits).0
}

/// One coupled-analysis solve at `bits`, yielding both the hazards and
/// the worst-case output-region deviation at exit.
fn analyze_at(
    program: &Program,
    cfg: &Cfg,
    sanitized: u16,
    mem_words: Option<usize>,
    bits: u8,
) -> (Vec<Hazard>, u64) {
    let sol = solve_error_bounds(program, cfg, bits);
    let mut out = Vec::new();
    let is_sanitized = |r: Reg| sanitized & (1 << r.0) != 0;
    for (pc, instr) in program.iter() {
        let Some(s) = sol.before_at(pc) else {
            continue;
        };
        let mut check_branch = |r: Reg| {
            if is_sanitized(r) {
                return;
            }
            let av = s.reg(r);
            if av.iv.wrapped {
                out.push(Hazard {
                    pc,
                    kind: HazardKind::Wraparound(r),
                });
            }
            if dev_bound(av) > 0 {
                out.push(Hazard {
                    pc,
                    kind: HazardKind::BranchDeviation(r),
                });
            }
        };
        match instr {
            Instr::Brz(r, _) | Instr::Brnz(r, _) => check_branch(r),
            Instr::Brlt(a, b, _) | Instr::Brge(a, b, _) => {
                check_branch(a);
                check_branch(b);
            }
            Instr::LdInd(_, base, off) | Instr::StInd(base, off, _) => {
                check_address(&mut out, s, pc, base, off, sanitized, mem_words);
            }
            _ => {}
        }
    }
    let mut output_dev = 0u64;
    for (pc, instr) in program.iter() {
        if matches!(instr, Instr::Halt | Instr::FrameDone) {
            if let Some(s) = sol.after_at(pc) {
                output_dev = output_dev.max(s.region.err);
            }
        }
    }
    (out, output_dev)
}

fn check_address(
    out: &mut Vec<Hazard>,
    s: &ApproxState,
    pc: usize,
    base: Reg,
    off: i32,
    sanitized: u16,
    mem_words: Option<usize>,
) {
    let av = s.reg(base);
    let dev = dev_bound(av);
    if sanitized & (1 << base.0) == 0 {
        if av.iv.wrapped {
            out.push(Hazard {
                pc,
                kind: HazardKind::Wraparound(base),
            });
        }
        if dev > 0 {
            out.push(Hazard {
                pc,
                kind: HazardKind::AddressDeviation(base),
            });
        }
    } else if dev > 0 {
        // Sanitized base: the kernel vouches for the *value*, but the
        // resulting address must still be provably in bounds, or a
        // deviated index faults / lands on the wrong data.
        if let Some(words) = mem_words {
            let (lo, hi) = (av.iv.lo + off as i64, av.iv.hi + off as i64);
            if lo < 0 || hi >= words as i64 {
                out.push(Hazard {
                    pc,
                    kind: HazardKind::AddressRange(base),
                });
            }
        }
    }
}

/// Derives the full [`BitwidthReport`] for `program`.
///
/// Runs the coupled analysis once per candidate setting (8 fixpoints);
/// the floor at each pc is one above the largest rejected setting, so a
/// non-monotone artifact of widening can never under-report.
pub fn bitwidth_report(
    program: &Program,
    cfg: &Cfg,
    sanitized: u16,
    mem_words: Option<usize>,
) -> BitwidthReport {
    let len = program.len();
    let mut pc_floor = vec![1u8; len];
    let mut output_err = [0u64; 8];
    let mut hazards_at_1 = Vec::new();
    for bits in 1..=8u8 {
        let (hz, dev) = analyze_at(program, cfg, sanitized, mem_words, bits);
        for h in &hz {
            pc_floor[h.pc] = pc_floor[h.pc].max(bits + 1);
        }
        if bits == 1 {
            hazards_at_1 = hz;
        }
        output_err[bits as usize - 1] = dev;
    }
    // The solve at floor `b` covers every run at bits >= b, so its bound
    // also applies to all wider settings; the running minimum repairs
    // non-monotone widening artifacts without losing soundness.
    for b in 1..8 {
        output_err[b] = output_err[b].min(output_err[b - 1]);
    }
    let block_floors = cfg
        .blocks()
        .iter()
        .map(|b| BlockFloor {
            start: b.start,
            end: b.end,
            floor: pc_floor[b.start..b.end].iter().copied().max().unwrap_or(1),
        })
        .collect();
    let program_floor = pc_floor.iter().copied().max().unwrap_or(1);
    BitwidthReport {
        pc_floor,
        block_floors,
        program_floor,
        output_err,
        hazards: hazards_at_1,
    }
}

/// The statically proven governor floor for `program`: the smallest
/// setting safe at every instruction, clamped into the governor's `1..=8`
/// operating range ([`NEVER_SAFE`] clamps to 8 — the sim still cannot
/// run "more exactly than exact"; the wraparound itself is reported by
/// the lint, not the governor).
pub fn static_floor(program: &Program, sanitized: u16, mem_words: Option<usize>) -> u8 {
    let cfg = Cfg::build(program);
    bitwidth_report(program, &cfg, sanitized, mem_words)
        .program_floor
        .min(8)
}

/// The `nvp-lint` pass surfacing the bitwidth analysis as diagnostics.
///
/// Inert unless the analysis configuration carries a
/// [`DeclaredBits`]: the lints judge a *declared* operating range, so a
/// bare program with no declaration has nothing to check.
#[derive(Debug, Default)]
pub struct BitwidthPass;

impl Pass for BitwidthPass {
    fn name(&self) -> &'static str {
        "bitwidth"
    }

    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
        let Some(declared) = cx.config.declared else {
            return Vec::new();
        };
        let report = bitwidth_report(
            cx.program,
            cx.cfg,
            cx.config.sanitized_regs,
            cx.config.mem_words,
        );
        let mut out = Vec::new();
        // Hazards standing at the declared minimum setting.
        for h in hazards_at(
            cx.program,
            cx.cfg,
            cx.config.sanitized_regs,
            cx.config.mem_words,
            declared.minbits,
        ) {
            let d = match h.kind {
                HazardKind::BranchDeviation(r) => Diagnostic::at(
                    LintCode::ApproxUnsafeAddressOrBranch,
                    h.pc,
                    format!(
                        "branch operand {r} can deviate at the declared minimum of \
                         {} bits: control flow may diverge from the exact run",
                        declared.minbits
                    ),
                ),
                HazardKind::AddressDeviation(r) => Diagnostic::at(
                    LintCode::ApproxUnsafeAddressOrBranch,
                    h.pc,
                    format!(
                        "indirect base {r} can deviate at the declared minimum of \
                         {} bits: the access may fault or alias other data",
                        declared.minbits
                    ),
                ),
                HazardKind::AddressRange(r) => Diagnostic::at(
                    LintCode::ApproxUnsafeAddressOrBranch,
                    h.pc,
                    format!(
                        "sanitized base {r} deviates at {} bits and its address \
                         range is not provably inside data memory",
                        declared.minbits
                    ),
                ),
                HazardKind::Wraparound(r) => Diagnostic::at(
                    LintCode::ExactValueOverflow,
                    h.pc,
                    format!(
                        "{r} may wrap around i32 before reaching this branch/address: \
                         unsafe at every bitwidth"
                    ),
                ),
            };
            out.push(d.with_context(cx.program));
        }
        if declared.minbits > report.program_floor {
            out.push(Diagnostic::program_level(
                LintCode::OverConservativeBits,
                format!(
                    "declared minimum of {} bits is over-conservative: {} bits are \
                     statically proven safe for every instruction",
                    declared.minbits, report.program_floor
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalysisConfig;
    use nvp_isa::ProgramBuilder;

    /// Loop over a table indexed by a clamped AC-derived value — the
    /// SUSAN shape. Safe at every bitwidth thanks to the clamp.
    fn clamped_kernel() -> Program {
        let mut b = ProgramBuilder::new();
        b.mark_ac(Reg(4)).approx_region(20, 40);
        b.ld(Reg(4), 25)
            .add(Reg(4), Reg(4), Reg(4))
            .maxi(Reg(7), Reg(4), 0)
            .mini(Reg(7), Reg(7), 8)
            .ld_ind(Reg(5), Reg(7), 0)
            .halt();
        b.build().unwrap()
    }

    #[test]
    fn clamped_sanitized_index_is_safe_at_one_bit() {
        let p = clamped_kernel();
        let cfg = Cfg::build(&p);
        let report = bitwidth_report(&p, &cfg, 1 << 7, Some(64));
        assert_eq!(report.program_floor, 1, "hazards: {:?}", report.hazards);
    }

    #[test]
    fn unsanitized_deviating_index_floors_above_one() {
        let p = clamped_kernel();
        let cfg = Cfg::build(&p);
        // Same program, no sanitization declared: the index deviates at
        // every reduced setting (even 7 bits truncates one stored bit),
        // and doubling an unknown region word can wrap even at full
        // precision, so no setting is accepted at all.
        let report = bitwidth_report(&p, &cfg, 0, Some(64));
        assert_eq!(
            report.program_floor, NEVER_SAFE,
            "hazards: {:?}",
            report.hazards
        );
        assert!(report
            .hazards
            .iter()
            .any(|h| matches!(h.kind, HazardKind::AddressDeviation(r) if r == Reg(7))));
        assert!(report
            .hazards
            .iter()
            .any(|h| matches!(h.kind, HazardKind::Wraparound(r) if r == Reg(7))));
    }

    #[test]
    fn sanitized_index_with_unprovable_range_is_flagged() {
        // The clamp allows [0, 8] but memory only has 5 words: the
        // sanitized exemption must not silence the range check.
        let p = clamped_kernel();
        let cfg = Cfg::build(&p);
        let report = bitwidth_report(&p, &cfg, 1 << 7, Some(5));
        assert!(report.program_floor > 1);
        assert!(report
            .hazards
            .iter()
            .any(|h| matches!(h.kind, HazardKind::AddressRange(_))));
    }

    #[test]
    fn precise_loop_floors_at_one_bit() {
        let mut b = ProgramBuilder::new();
        b.mark_ac(Reg(4)).approx_region(100, 200);
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ldi(n, 16);
        let top = b.label();
        b.place(top);
        b.ld_ind(Reg(4), i, 100)
            .addi(Reg(4), Reg(4), 3)
            .st_ind(i, 100, Reg(4))
            .addi(i, i, 1)
            .brlt(i, n, top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let report = bitwidth_report(&p, &cfg, 0, Some(256));
        assert_eq!(report.program_floor, 1, "hazards: {:?}", report.hazards);
        // Output error shrinks monotonically toward exactness.
        assert!(report.output_err[0] >= report.output_err[6]);
        assert_eq!(report.output_err[7], 0);
        assert_eq!(static_floor(&p, 0, Some(256)), 1);
    }

    #[test]
    fn wrapped_branch_operand_is_never_safe() {
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, i32::MAX - 3).ldi(n, 0);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 1).brlt(n, i, top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let report = bitwidth_report(&p, &cfg, 0, None);
        assert_eq!(report.program_floor, NEVER_SAFE);
    }

    #[test]
    fn pass_is_inert_without_a_declaration() {
        let p = clamped_kernel();
        let cfg = Cfg::build(&p);
        let cx = PassContext {
            program: &p,
            cfg: &cfg,
            config: &AnalysisConfig::default(),
        };
        assert!(BitwidthPass.run(&cx).is_empty());
    }

    #[test]
    fn declared_range_produces_e004_and_w003() {
        let p = clamped_kernel();
        let cfg = Cfg::build(&p);
        // Unsafe declaration: 1 bit minimum with no sanitization.
        let cx_cfg = AnalysisConfig {
            sanitized_regs: 0,
            mem_words: Some(64),
            declared: Some(DeclaredBits::new(1, 8)),
        };
        let cx = PassContext {
            program: &p,
            cfg: &cfg,
            config: &cx_cfg,
        };
        let diags = BitwidthPass.run(&cx);
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::ApproxUnsafeAddressOrBranch));
        // Over-conservative declaration: floor is 1 when sanitized, but
        // the kernel declares 6.
        let cx_cfg = AnalysisConfig {
            sanitized_regs: 1 << 7,
            mem_words: Some(64),
            declared: Some(DeclaredBits::new(6, 8)),
        };
        let cx = PassContext {
            program: &p,
            cfg: &cfg,
            config: &cx_cfg,
        };
        let diags = BitwidthPass.run(&cx);
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::OverConservativeBits));
        assert!(!diags
            .iter()
            .any(|d| d.code == LintCode::ApproxUnsafeAddressOrBranch));
    }
}
