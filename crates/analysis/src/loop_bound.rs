//! Natural-loop discovery and trip-count bounding.
//!
//! The WCEC solver needs, for every cycle in the CFG, an upper bound on
//! how many times the cycle can turn per entry. This module finds natural
//! loops structurally (dominators → back edges → body closure) and then
//! bounds each loop by pattern-matching its induction register against the
//! interval invariants proven by [`crate::error_bound`]:
//!
//! * every in-loop write of a candidate register must be a same-sign
//!   self-increment `addi r, r, c`, and every latch block must contain at
//!   least one — so each head-to-head traversal advances the counter by at
//!   least the smallest per-latch stride sum;
//! * the interval invariant at the loop head then caps the number of
//!   consecutive head visits at `diam / stride + 1`.
//!
//! When no register matches (or the head interval is ⊤ / tainted by
//! possible concrete wraparound) the loop is reported
//! [`TripBound::Unbounded`] — the honest answer, surfaced to users as
//! `NVP-W004`. The bound is parameterized by the governor bit floor
//! because AC noise on an approximate counter widens its interval: a loop
//! can be provably bounded at 8 bits and unbounded at 1.

use crate::cfg::Cfg;
use crate::dataflow::Solution;
use crate::error_bound::{solve_error_bounds, ApproxState};
use nvp_isa::{Instr, Program, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Upper bound on a loop's per-entry trip count (head visits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TripBound {
    /// The loop head is visited at most this many times per loop entry.
    Bounded(u64),
    /// No sound bound could be derived.
    Unbounded,
}

impl TripBound {
    /// Is a finite bound known?
    pub fn is_bounded(&self) -> bool {
        matches!(self, TripBound::Bounded(_))
    }
}

/// Largest trip count accepted as a credible bound.
///
/// Intervals inherited from ⊤ (memory loads, widening-ladder rungs at
/// ±2¹⁶ and beyond) can survive branch refinement as "bounded" ranges of
/// two billion values. The resulting trip counts are numerically sound
/// but certify nothing — worse, they would let `NVP-E006` "prove" a
/// livelock from what is really an *unknown* bound. Anything above this
/// cutoff is therefore demoted to the honest [`TripBound::Unbounded`]
/// (loosening an upper bound to ∞ is always sound).
pub const MAX_CREDIBLE_TRIPS: u64 = 1 << 20;

impl fmt::Display for TripBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripBound::Bounded(n) => write!(f, "≤{n}"),
            TripBound::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// One natural loop (back edges sharing a head are merged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Header block id.
    pub head: usize,
    /// Member block ids (sorted, includes the head).
    pub members: Vec<usize>,
    /// Blocks whose terminator takes a back edge to the head.
    pub latches: Vec<usize>,
    /// The induction register the bound was derived from, if any.
    pub counter: Option<Reg>,
    /// Guaranteed counter advance per iteration (0 when no counter).
    pub stride: u64,
    /// Trip-count bound.
    pub bound: TripBound,
    /// Proven *minimum* latch executions per entry (0 when nothing could
    /// be proven). Unlike [`bound`](Self::bound), which over-approximates,
    /// this under-approximates: every entry into the loop runs at least
    /// this many iterations. It is what lets the energy lints *prove*
    /// livelock rather than merely fail to disprove it.
    pub min_bound: u64,
}

impl NaturalLoop {
    /// First pc of the loop header block.
    pub fn head_pc(&self, cfg: &Cfg) -> usize {
        cfg.blocks()[self.head].start
    }
}

/// All loops of a program, innermost-first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopReport {
    /// Loops sorted by body size ascending, so nested loops precede the
    /// loops containing them (a strict subset is strictly smaller).
    pub loops: Vec<NaturalLoop>,
    /// A retreating edge whose target does not dominate its source was
    /// found: the CFG is irreducible and cycles through it are not
    /// captured by any [`NaturalLoop`].
    pub irreducible: bool,
}

/// Block-level dominator sets (`dom[b][d]` ⇔ `d` dominates `b`), plus the
/// set of blocks reachable from the entry. Unreachable blocks keep the
/// full set (vacuously dominated by everything) and are excluded from
/// loop discovery.
fn dominators(cfg: &Cfg) -> (Vec<Vec<bool>>, Vec<bool>) {
    let n = cfg.blocks().len();
    let mut dom = vec![vec![true; n]; n];
    let mut reachable = vec![false; n];
    let rpo = cfg.rpo();
    for &b in &rpo {
        reachable[b] = true;
    }
    if n == 0 || rpo.is_empty() {
        return (dom, reachable);
    }
    let entry = rpo[0];
    for (d, v) in dom[entry].iter_mut().enumerate() {
        *v = d == entry;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new: Vec<bool> = vec![true; n];
            let mut any = false;
            for &p in &cfg.blocks()[b].preds {
                if !reachable[p] {
                    continue;
                }
                for (nd, pd) in new.iter_mut().zip(&dom[p]) {
                    *nd = *nd && *pd;
                }
                any = true;
            }
            if !any {
                // In rpo yet no reachable pred: only possible for the
                // entry, handled above.
                continue;
            }
            new[b] = true;
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
    }
    (dom, reachable)
}

/// Finds the natural loops of `cfg` (structure only, no bounds).
pub fn find_loops(cfg: &Cfg) -> LoopReport {
    let (dom, reachable) = dominators(cfg);
    let rpo = cfg.rpo();
    let mut rpo_pos = vec![usize::MAX; cfg.blocks().len()];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_pos[b] = i;
    }

    let mut irreducible = false;
    // head → (members, latches)
    let mut by_head: Vec<(usize, Vec<bool>, Vec<usize>)> = Vec::new();
    for (u, blk) in cfg.blocks().iter().enumerate() {
        if !reachable[u] {
            continue;
        }
        for &h in &blk.succs {
            if !reachable[h] {
                continue;
            }
            if dom[u][h] {
                // Back edge u → h: body = {h} ∪ reverse-reach from u
                // stopping at h.
                let n = cfg.blocks().len();
                let entry = by_head.iter_mut().find(|(head, ..)| *head == h);
                let (members, latches) = match entry {
                    Some((_, m, l)) => (m, l),
                    None => {
                        by_head.push((h, vec![false; n], Vec::new()));
                        let last = by_head.last_mut().expect("just pushed");
                        (&mut last.1, &mut last.2)
                    }
                };
                members[h] = true;
                let mut stack = vec![u];
                while let Some(x) = stack.pop() {
                    if members[x] {
                        continue;
                    }
                    members[x] = true;
                    for &p in &cfg.blocks()[x].preds {
                        if reachable[p] && !members[p] {
                            stack.push(p);
                        }
                    }
                }
                if !latches.contains(&u) {
                    latches.push(u);
                }
            } else if rpo_pos[h] <= rpo_pos[u] && h != u {
                // Retreating but not a back edge: irreducible region.
                irreducible = true;
            }
        }
    }

    let mut loops: Vec<NaturalLoop> = by_head
        .into_iter()
        .map(|(head, members, mut latches)| {
            latches.sort_unstable();
            NaturalLoop {
                head,
                members: members
                    .iter()
                    .enumerate()
                    .filter_map(|(b, &m)| m.then_some(b))
                    .collect(),
                latches,
                counter: None,
                stride: 0,
                bound: TripBound::Unbounded,
                min_bound: 0,
            }
        })
        .collect();
    loops.sort_by_key(|l| (l.members.len(), l.head));
    LoopReport { loops, irreducible }
}

/// Bound derivation for one loop against an interval solution.
fn bound_loop(program: &Program, cfg: &Cfg, l: &mut NaturalLoop, sol: &Solution<ApproxState>) {
    let head_pc = l.head_pc(cfg);
    let Some(head_state) = sol.before_at(head_pc) else {
        // The fixpoint never reached the head: the loop is dead code.
        l.bound = TripBound::Bounded(0);
        return;
    };

    let member_pcs: Vec<usize> = l
        .members
        .iter()
        .flat_map(|&b| cfg.blocks()[b].pcs())
        .collect();

    let mut best: Option<(Reg, u64, u64)> = None; // (reg, stride, trips)
    'regs: for r in 0..nvp_isa::NUM_REGS as u8 {
        let r = Reg(r);
        // Every in-loop write must be a same-sign self-increment.
        let mut strides: Vec<(usize, i64)> = Vec::new();
        for &pc in &member_pcs {
            let instr = program.fetch(pc).expect("pc in range");
            if instr.dst() == Some(r) {
                match instr {
                    Instr::AddI(d, s, c) if d == s && c != 0 => {
                        strides.push((pc, c as i64));
                    }
                    _ => continue 'regs,
                }
            }
        }
        if strides.is_empty()
            || !(strides.iter().all(|&(_, c)| c > 0) || strides.iter().all(|&(_, c)| c < 0))
        {
            continue;
        }
        // Guaranteed advance per iteration: each head-to-head traversal
        // runs exactly one latch block to completion, so it executes that
        // latch's increments (plus possibly others of the same sign).
        let mut advance = u64::MAX;
        for &latch in &l.latches {
            let blk = &cfg.blocks()[latch];
            let sum: u64 = strides
                .iter()
                .filter(|(pc, _)| blk.pcs().contains(pc))
                .map(|&(_, c)| c.unsigned_abs())
                .sum();
            if sum == 0 {
                continue 'regs; // a latch that skips the counter
            }
            advance = advance.min(sum);
        }
        // The head invariant caps consecutive monotone visits.
        let iv = head_state.reg(r).iv;
        if iv.wrapped || iv.lo == i32::MIN as i64 || iv.hi == i32::MAX as i64 {
            continue;
        }
        let trips = iv.diam() / advance + 1;
        if trips > MAX_CREDIBLE_TRIPS {
            continue;
        }
        if best.is_none_or(|(_, _, t)| trips < t) {
            best = Some((r, advance, trips));
        }
    }

    if let Some((r, stride, trips)) = best {
        l.counter = Some(r);
        l.stride = stride;
        l.bound = TripBound::Bounded(trips);
    }
}

/// Minimum-trip derivation for one loop: a *lower* bound on latch
/// executions per entry. The upper bound says "no more than N"; this says
/// "no fewer than N" — the direction a livelock *proof* needs, since an
/// over-approximate WCEC exceeding the budget proves nothing (the slack
/// may be analysis looseness, as in kernels whose per-entry intervals are
/// joined across outer iterations).
///
/// The derivation is deliberately narrow; every condition is required:
///
/// * a single latch, and the latch terminator is the only exit from the
///   loop (any other escape could cut an execution short);
/// * the latch terminator is `brlt r, limit, head` (runs while
///   `r < limit`) or `brnz r, head` (runs while `r != 0`);
/// * the counter `r` has exactly one in-loop write — `addi r, r, c` in
///   the head or latch block, so each head-to-head traversal advances it
///   by exactly `c` (a stride in a conditional arm or inner loop could
///   advance faster);
/// * every entry edge ends with an exact `ldi r, k` initial value.
///
/// Then at the `t`-th latch branch the counter is exactly `k + t·c`, and
/// the branch cannot fall through before the counter reaches the limit's
/// interval floor: `t ≥ ⌈(lo(limit) − k)/c⌉` (resp. `⌈k/|c|⌉` for the
/// countdown form). Wraparound only ever jumps the counter *away* from
/// the `brlt` goal, and the `brnz` form exits only on an exact zero, so
/// the bound survives overflow. When any condition fails, `min_bound`
/// stays 0 — "nothing proven", never "proven small".
fn min_bound_loop(program: &Program, cfg: &Cfg, l: &mut NaturalLoop, sol: &Solution<ApproxState>) {
    let &[latch] = l.latches.as_slice() else {
        return;
    };
    let is_member = |b: usize| l.members.binary_search(&b).is_ok();
    for &m in &l.members {
        if m != latch && cfg.blocks()[m].succs.iter().any(|&s| !is_member(s)) {
            return; // an exit that bypasses the latch terminator
        }
    }
    let head_pc = l.head_pc(cfg) as u32;
    let term_pc = cfg.blocks()[latch].end - 1;
    let (r, count_up, goal_lo) = match program.fetch(term_pc) {
        Some(Instr::Brlt(a, b, t)) if t == head_pc => {
            let Some(st) = sol.before_at(term_pc) else {
                return;
            };
            let iv = st.reg(b).iv;
            if iv.wrapped {
                return;
            }
            (a, true, iv.lo)
        }
        Some(Instr::Brnz(a, t)) if t == head_pc => (a, false, 0),
        _ => return,
    };
    let mut stride: Option<i64> = None;
    for &m in &l.members {
        for pc in cfg.blocks()[m].pcs() {
            let instr = program.fetch(pc).expect("pc in range");
            if instr.dst() != Some(r) {
                continue;
            }
            match instr {
                Instr::AddI(d, s, c)
                    if d == s && c != 0 && (m == l.head || m == latch) && stride.is_none() =>
                {
                    stride = Some(c as i64);
                }
                _ => return,
            }
        }
    }
    let Some(c) = stride else {
        return;
    };
    // An exact initial value on every entry edge; the fewest iterations
    // come from the entry value closest to the exit goal.
    let mut init: Option<i64> = None;
    for (p, blk) in cfg.blocks().iter().enumerate() {
        if is_member(p) || !blk.succs.contains(&l.head) {
            continue;
        }
        let mut found = None;
        for pc in blk.pcs().rev() {
            let instr = program.fetch(pc).expect("pc in range");
            if instr.dst() == Some(r) {
                if let Instr::Ldi(_, k) = instr {
                    found = Some(k as i64);
                }
                break;
            }
        }
        let Some(k) = found else {
            return;
        };
        init = Some(match init {
            None => k,
            Some(prev) if count_up => prev.max(k),
            Some(prev) => prev.min(k),
        });
    }
    let Some(k) = init else {
        return;
    };
    let trips = if count_up {
        if c <= 0 {
            return;
        }
        let gap = goal_lo - k;
        if gap <= 0 {
            0
        } else {
            (gap + c - 1) / c
        }
    } else {
        if c >= 0 || k <= 0 {
            return;
        }
        (k + (-c) - 1) / (-c)
    };
    // The loop only exits through the latch, so merely entering it
    // already costs one latch execution.
    l.min_bound = trips.max(1) as u64;
}

/// Finds and bounds all loops of `program` at governor floor `bits`,
/// using the value-range invariants of [`solve_error_bounds`].
pub fn loop_report(program: &Program, cfg: &Cfg, bits: u8) -> LoopReport {
    let mut report = find_loops(cfg);
    if report.loops.is_empty() {
        return report;
    }
    let sol = solve_error_bounds(program, cfg, bits);
    for l in &mut report.loops {
        bound_loop(program, cfg, l, &sol);
        min_bound_loop(program, cfg, l, &sol);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::ProgramBuilder;

    fn report(p: &Program, bits: u8) -> LoopReport {
        loop_report(p, &Cfg::build(p), bits)
    }

    #[test]
    fn counting_loop_is_bounded_by_its_limit() {
        // i = 0; do { i += 1 } while (i < 10)
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ldi(n, 10);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert!(!r.irreducible);
        assert_eq!(r.loops.len(), 1);
        let l = &r.loops[0];
        assert_eq!(l.counter, Some(i));
        assert_eq!(l.stride, 1);
        // Head interval [0, 9] → at most 10 head visits.
        assert_eq!(l.bound, TripBound::Bounded(10));
    }

    #[test]
    fn strided_loop_divides_by_the_stride() {
        // for (i = 0; i < 100; i += 5)
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ldi(n, 100);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 5).brlt(i, n, top);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert_eq!(r.loops[0].stride, 5);
        assert_eq!(r.loops[0].bound, TripBound::Bounded(95 / 5 + 1));
    }

    #[test]
    fn countdown_loop_is_bounded() {
        // i = 50; do { i -= 1 } while (i != 0)
        let mut b = ProgramBuilder::new();
        let i = Reg(0);
        b.ldi(i, 50);
        let top = b.label();
        b.place(top);
        b.addi(i, i, -1).brnz(i, top);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert_eq!(r.loops[0].counter, Some(i));
        assert!(r.loops[0].bound.is_bounded());
    }

    #[test]
    fn data_dependent_exit_is_unbounded() {
        // The exit compares against a memory load: no interval bound.
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ld(n, 3);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert_eq!(r.loops[0].bound, TripBound::Unbounded);
    }

    #[test]
    fn non_induction_update_defeats_the_bound() {
        // The "counter" is also multiplied inside the body.
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 1).ldi(n, 100);
        let top = b.label();
        b.place(top);
        b.muli(i, i, 2).addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert_eq!(r.loops[0].counter, None);
        assert_eq!(r.loops[0].bound, TripBound::Unbounded);
    }

    #[test]
    fn nested_loops_are_innermost_first_and_both_bounded() {
        // for (i = 0; i < 4; i++) for (j = 0; j < 8; j++)
        let mut b = ProgramBuilder::new();
        let (i, j, ni, nj) = (Reg(0), Reg(1), Reg(2), Reg(3));
        b.ldi(ni, 4).ldi(nj, 8).ldi(i, 0);
        let outer = b.label();
        b.place(outer);
        b.ldi(j, 0);
        let inner = b.label();
        b.place(inner);
        b.addi(j, j, 1).brlt(j, nj, inner);
        b.addi(i, i, 1).brlt(i, ni, outer);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert_eq!(r.loops.len(), 2);
        // Innermost (smaller body) first.
        assert!(r.loops[0].members.len() < r.loops[1].members.len());
        assert_eq!(r.loops[0].bound, TripBound::Bounded(8));
        assert_eq!(r.loops[1].bound, TripBound::Bounded(4));
    }

    #[test]
    fn min_trips_are_proven_for_exact_count_up_and_countdown() {
        // Count-up: exact init 0, exact limit 10 → at least 10 latch runs.
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ldi(n, 10);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert_eq!(r.loops[0].min_bound, 10);

        // Countdown: init 50, brnz, stride −1 → at least 50.
        let mut b = ProgramBuilder::new();
        let i = Reg(0);
        b.ldi(i, 50);
        let top = b.label();
        b.place(top);
        b.addi(i, i, -1).brnz(i, top);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert_eq!(r.loops[0].min_bound, 50);
    }

    #[test]
    fn unknown_limit_proves_only_one_iteration() {
        // The limit comes from memory: its interval floor is i32::MIN, so
        // the only thing provable is the do-while entry iteration.
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ld(n, 3);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert_eq!(r.loops[0].bound, TripBound::Unbounded);
        assert_eq!(r.loops[0].min_bound, 1);
    }

    #[test]
    fn nested_loops_prove_min_trips_independently() {
        let mut b = ProgramBuilder::new();
        let (i, j, ni, nj) = (Reg(0), Reg(1), Reg(2), Reg(3));
        b.ldi(ni, 4).ldi(nj, 8).ldi(i, 0);
        let outer = b.label();
        b.place(outer);
        b.ldi(j, 0);
        let inner = b.label();
        b.place(inner);
        b.addi(j, j, 1).brlt(j, nj, inner);
        b.addi(i, i, 1).brlt(i, ni, outer);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert_eq!(r.loops[0].min_bound, 8);
        assert_eq!(r.loops[1].min_bound, 4);
    }

    #[test]
    fn an_extra_exit_voids_the_min_proof() {
        // A break guarded by a memory load: the loop may leave after one
        // pass, so no multi-trip floor may be claimed.
        let mut b = ProgramBuilder::new();
        let (i, n, g) = (Reg(0), Reg(1), Reg(2));
        let out = b.label();
        b.ldi(i, 0).ldi(n, 10);
        let top = b.label();
        b.place(top);
        b.ld(g, 7).brnz(g, out);
        b.addi(i, i, 1).brlt(i, n, top);
        b.place(out);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert_eq!(r.loops[0].min_bound, 0);
    }

    #[test]
    fn infeasible_loop_is_bounded_at_zero() {
        // The guard always branches over the loop; the CFG still has the
        // fall-through edge, but branch refinement proves it infeasible.
        let mut b = ProgramBuilder::new();
        let (i, g) = (Reg(0), Reg(1));
        let end = b.label();
        b.ldi(g, 0).brz(g, end);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 1).brnz(i, top);
        b.place(end);
        b.halt();
        let p = b.build().unwrap();
        let r = report(&p, 8);
        assert_eq!(r.loops.len(), 1);
        assert_eq!(r.loops[0].bound, TripBound::Bounded(0));
    }
}
