//! Compile hints for the superinstruction engine.
//!
//! `nvp_isa::compiled` pre-decodes programs into direct-threaded op tables
//! and wants to hoist per-access memory fault checks out of op bodies.
//! Absolute accesses it can prove alone; register-indirect accesses need a
//! value analysis — which this crate already has. [`compile_hints`] reuses
//! the error-bound interval dataflow ([`crate::error_bound`], the same
//! per-pc register intervals the dirty-set analyzer trusts for store
//! addresses) to mark every `ld`/`st` whose address range is provably
//! inside data memory.
//!
//! Soundness inherits from the interval domain's guarantees:
//!
//! * the dataflow's entry state is ⊤ for every register, so re-entry with
//!   stale register contents (roll-forward to pc 0) is covered;
//! * loads return ⊤ intervals, covering NVM retention decay;
//! * AC-marked writes are widened by the worst-case approximation bound at
//!   1 bit, the maximum over every runtime bitwidth ≥ 1;
//! * restores resume at a saved pc with values captured at that pc, where
//!   the per-pc invariant held when they were saved.
//!
//! A proof is only ever used to skip the interpreter's fault *test*; the
//! underlying memory indexing stays bounds-checked safe Rust, so an
//! invalid proof would panic loudly rather than corrupt state.

use crate::cfg::Cfg;
use crate::error_bound::solve_error_bounds;
use nvp_isa::compiled::CompileHints;
use nvp_isa::{Instr, Program};

/// Computes [`CompileHints`] for compiling `program` against a data memory
/// of `mem_words` words.
///
/// `in_range[pc]` is set for register-indirect memory ops whose base
/// register interval (at 1-bit worst-case widening) proves every reachable
/// address lies inside `[0, mem_words)`. Absolute ops are left to the
/// compiler, which ranges-checks their constant address directly.
pub fn compile_hints(program: &Program, cfg: &Cfg, mem_words: usize) -> CompileHints {
    let sol = solve_error_bounds(program, cfg, 1);
    let mw = mem_words as i64;
    let in_range = program
        .instrs()
        .iter()
        .enumerate()
        .map(|(pc, &instr)| {
            let (base, off) = match instr {
                Instr::LdInd(_, b, off) => (b, off),
                Instr::StInd(b, off, _) => (b, off),
                _ => return false,
            };
            let Some(state) = sol.before_at(pc) else {
                return false;
            };
            let iv = state.reg(base).iv;
            if iv.wrapped {
                return false;
            }
            let lo = iv.lo.checked_add(off as i64);
            let hi = iv.hi.checked_add(off as i64);
            matches!((lo, hi), (Some(lo), Some(hi)) if lo >= 0 && hi < mw)
        })
        .collect();
    CompileHints {
        in_range,
        limit: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::program::ProgramBuilder;
    use nvp_isa::Reg;

    fn hints_for(program: &Program, mem_words: usize) -> CompileHints {
        let cfg = Cfg::build(program);
        compile_hints(program, &cfg, mem_words)
    }

    #[test]
    fn constant_base_indirect_access_is_proven() {
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 5)
            .ld_ind(Reg(1), Reg(0), 2) // mem[7]: in range for 16 words
            .st_ind(Reg(0), -1, Reg(1)) // mem[4]
            .halt();
        let p = b.build().unwrap();
        let h = hints_for(&p, 16);
        assert!(h.in_range[1]);
        assert!(h.in_range[2]);
    }

    #[test]
    fn bounded_loop_index_is_proven_and_unknown_base_is_not() {
        // for i in 0..8 { st_ind(i, +4) }  -- addresses 4..=11, 16 words
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 0).ldi(Reg(1), 8).ldi(Reg(2), 1);
        let top = b.label();
        b.place(top);
        b.st_ind(Reg(0), 4, Reg(2));
        b.addi(Reg(0), Reg(0), 1);
        b.brlt(Reg(0), Reg(1), top);
        // Base loaded from memory: interval is top, unprovable.
        b.ld(Reg(3), 0).ld_ind(Reg(4), Reg(3), 0);
        b.halt();
        let p = b.build().unwrap();
        let h = hints_for(&p, 16);
        assert!(h.in_range[3], "loop-bounded store should be proven");
        assert!(!h.in_range[7], "loaded base must stay checked");
    }

    #[test]
    fn out_of_range_offset_is_not_proven() {
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 5).ld_ind(Reg(1), Reg(0), 20).halt();
        let p = b.build().unwrap();
        let h = hints_for(&p, 16); // mem[25] out of range
        assert!(!h.in_range[1]);
    }

    #[test]
    fn negative_reach_is_not_proven() {
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 1).ld_ind(Reg(1), Reg(0), -3).halt();
        let p = b.build().unwrap();
        let h = hints_for(&p, 16); // mem[-2] faults
        assert!(!h.in_range[1]);
    }

    #[test]
    fn ac_widened_base_respects_error_bound() {
        // An AC-marked base register's interval is widened by the ALU
        // error bound; a tight fit must not be proven.
        let mut b = ProgramBuilder::new();
        b.mark_ac(Reg(0));
        b.ldi(Reg(1), 7)
            .addi(Reg(0), Reg(1), 0) // AC write: widened
            .ld_ind(Reg(2), Reg(0), 0)
            .halt();
        let p = b.build().unwrap();
        let h = hints_for(&p, 8);
        assert!(!h.in_range[2], "widened AC base cannot prove a tight range");
    }

    #[test]
    fn hints_cover_every_pc() {
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 1).halt();
        let p = b.build().unwrap();
        let h = hints_for(&p, 4);
        assert_eq!(h.in_range.len(), p.len());
        assert!(h.limit.is_none());
    }
}
