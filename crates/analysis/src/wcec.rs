//! Whole-program worst-case energy consumption (WCEC) certificates.
//!
//! The dynamic simulator answers "how much energy *did* this run cost";
//! this module answers "how much energy *can* any run cost" — statically,
//! before deployment, per basic block, per checkpoint-to-checkpoint region,
//! and for the whole program. The bound is the classic WCET recipe
//! transplanted to energy:
//!
//! 1. price every instruction with [`CostModel`] (the exact arithmetic the
//!    simulator charges at runtime, tabulated per class at one governor
//!    bitwidth);
//! 2. bound every natural loop's trip count from the interval invariants
//!    ([`crate::loop_bound`]);
//! 3. contract loops innermost-first into supernodes weighing
//!    `trips × worst-iteration-cost`, then take the longest weighted path
//!    over the resulting DAG.
//!
//! Everything is computed in nJ as `f64`, with `f64::INFINITY` standing in
//! for "no finite bound" internally; the public [`Wcec`] type makes that
//! honest (`Unbounded`, never a silently infinite float). An unbounded
//! loop whose body lies entirely outside the queried region contributes
//! nothing — the region cannot execute it.
//!
//! **Regions.** Checkpoints are the pcs where a power cycle can (re)enter
//! the program: the entry, every `mark_resume`, and the instruction after
//! every `frame_done` (the commit point a resumed run restarts behind).
//! The region at a checkpoint is everything reachable from it without
//! crossing another checkpoint; its WCEC bounds the compute energy one
//! charge cycle must deliver to *guarantee* the region completes.
//!
//! **Two-sided bounds.** Each region also carries a proven *minimum*
//! traversal cost ([`Region::min_nj`]): the shortest weighted path to an
//! exit, with loops whose minimum trip count was proven multiplied in.
//! The two directions serve different lints. Headroom certification
//! (`NVP-I002`) wants the upper bound — "no execution can cost more".
//! Livelock detection (`NVP-E006`) needs the lower bound — an
//! over-approximate WCEC exceeding the budget may just be analysis
//! looseness (per-entry intervals joined across outer iterations inflate
//! inner trip counts), but if even the *cheapest* complete traversal
//! exceeds what a full capacitor can deliver, the region provably never
//! finishes.

use crate::cfg::Cfg;
use crate::cost_model::CostModel;
use crate::loop_bound::{loop_report, LoopReport, TripBound};
use nvp_isa::{Instr, Program};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A worst-case energy bound, in nJ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Wcec {
    /// Any execution costs at most this many nJ.
    Bounded(f64),
    /// No finite bound is known (an unbounded loop or irreducible cycle
    /// carries nonzero cost on some path).
    Unbounded,
}

impl Wcec {
    /// Converts from the solver's internal representation
    /// (`f64::INFINITY` ⇒ unbounded).
    fn from_nj(nj: f64) -> Wcec {
        if nj.is_finite() {
            Wcec::Bounded(nj)
        } else {
            Wcec::Unbounded
        }
    }

    /// The bound in nJ, if finite.
    pub fn nj(&self) -> Option<f64> {
        match *self {
            Wcec::Bounded(nj) => Some(nj),
            Wcec::Unbounded => None,
        }
    }

    /// Is a finite bound known?
    pub fn is_bounded(&self) -> bool {
        matches!(self, Wcec::Bounded(_))
    }
}

impl fmt::Display for Wcec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Wcec::Bounded(nj) => write!(f, "≤{nj:.1} nJ"),
            Wcec::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// Why a pc is a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionKind {
    /// The program entry (pc 0): where a cold start begins.
    Entry,
    /// A `mark_resume` point with the given id.
    Resume(u8),
    /// The instruction after a `frame_done`: a resumed run restarts behind
    /// the committed frame.
    PostFrame,
    /// A checkpoint proposed by placement synthesis
    /// ([`crate::ckpt_place`]) rather than declared by the program.
    Synthetic,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionKind::Entry => write!(f, "entry"),
            RegionKind::Resume(id) => write!(f, "resume#{id}"),
            RegionKind::PostFrame => write!(f, "post-frame"),
            RegionKind::Synthetic => write!(f, "synth"),
        }
    }
}

/// One checkpoint-to-checkpoint region and its energy bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// The checkpoint pc the region starts at.
    pub start_pc: usize,
    /// What kind of checkpoint starts it.
    pub kind: RegionKind,
    /// Pcs belonging to the region (sorted; includes bounding checkpoints).
    pub pcs: Vec<usize>,
    /// Worst-case energy to run from the checkpoint to the next one.
    pub wcec: Wcec,
    /// Proven *lower* bound, in nJ, on the energy of any complete
    /// traversal of the region (0.0 when nothing could be proven). The
    /// WCEC over-approximates, so "WCEC exceeds the budget" never proves
    /// anything; "even the cheapest traversal exceeds the budget" does,
    /// and that is the comparison the `NVP-E006` livelock lint makes.
    pub min_nj: f64,
}

/// The full WCEC certificate of a program at one governor bitwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct WcecReport {
    /// Governor bitwidth the certificate holds at.
    pub bits: u8,
    /// Static cost of each basic block (straight-line sum), in nJ,
    /// indexed by block id.
    pub block_nj: Vec<f64>,
    /// The loops and their trip bounds the certificate folded in.
    pub loops: LoopReport,
    /// Checkpoint-to-checkpoint regions, sorted by start pc.
    pub regions: Vec<Region>,
    /// Worst-case energy of any complete execution from the entry.
    pub program: Wcec,
}

impl WcecReport {
    /// The largest bounded region WCEC, if every region is bounded.
    pub fn worst_region(&self) -> Option<&Region> {
        self.regions.iter().max_by(|a, b| match (a.wcec, b.wcec) {
            (Wcec::Unbounded, Wcec::Unbounded) => std::cmp::Ordering::Equal,
            (Wcec::Unbounded, _) => std::cmp::Ordering::Greater,
            (_, Wcec::Unbounded) => std::cmp::Ordering::Less,
            (Wcec::Bounded(x), Wcec::Bounded(y)) => {
                x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
            }
        })
    }
}

/// Is `pc` a *declared* checkpoint, and of what kind? The entry, every
/// `mark_resume`, and the instruction after every `frame_done` are the pcs
/// a power cycle can (re)enter at; placement synthesis may add
/// [`RegionKind::Synthetic`] pcs on top of these.
pub fn checkpoint_kind(program: &Program, pc: usize) -> Option<RegionKind> {
    if pc == 0 {
        return Some(RegionKind::Entry);
    }
    match program.fetch(pc) {
        Some(Instr::MarkResume(id)) => Some(RegionKind::Resume(id)),
        _ => match pc.checked_sub(1).and_then(|p| program.fetch(p)) {
            Some(Instr::FrameDone) => Some(RegionKind::PostFrame),
            _ => None,
        },
    }
}

/// Union-find over pcs with per-root weights (nJ, `INFINITY` = unbounded).
struct Contraction {
    parent: Vec<usize>,
    weight: Vec<f64>,
}

impl Contraction {
    fn new(weights: Vec<f64>) -> Contraction {
        Contraction {
            parent: (0..weights.len()).collect(),
            weight: weights,
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges every rep in `members` into one supernode of weight `w`,
    /// returning the new root.
    fn contract(&mut self, members: &[usize], w: f64) -> usize {
        let root = members[0];
        for &m in members {
            let r = self.find(m);
            self.parent[r] = root;
        }
        self.parent[root] = root;
        self.weight[root] = w;
        root
    }
}

/// Longest weighted path from `start` over the rep graph induced by
/// `edges` (pairs of *pc*-level endpoints, mapped through the contraction).
/// Node weights come from the contraction roots. Returns `INFINITY` when a
/// cycle is reachable from `start` — with loops already contracted that
/// only happens for irreducible flow, and every instruction has positive
/// cost, so any residual reachable cycle genuinely breaks the bound.
fn longest_path(uf: &mut Contraction, edges: &[(usize, usize)], start: usize) -> f64 {
    let n = uf.parent.len();
    let start = uf.find(start);
    // Dedup rep-level edges, dropping self loops (internal to supernodes).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        let (a, b) = (uf.find(a), uf.find(b));
        if a != b && !adj[a].contains(&b) {
            adj[a].push(b);
        }
    }
    // Restrict to reps reachable from start.
    let mut reach = vec![false; n];
    let mut stack = vec![start];
    while let Some(x) = stack.pop() {
        if reach[x] {
            continue;
        }
        reach[x] = true;
        stack.extend(adj[x].iter().copied());
    }
    let mut indeg = vec![0usize; n];
    for (a, succs) in adj.iter().enumerate() {
        if !reach[a] {
            continue;
        }
        for &b in succs {
            indeg[b] += 1;
        }
    }
    // Kahn from the start; track how many reachable reps we retire.
    let mut dist = vec![f64::NEG_INFINITY; n];
    dist[start] = uf.weight[start];
    let mut queue: Vec<usize> = (0..n).filter(|&x| reach[x] && indeg[x] == 0).collect();
    let mut retired = 0usize;
    let total = reach.iter().filter(|&&r| r).count();
    let mut best = dist[start];
    while let Some(a) = queue.pop() {
        retired += 1;
        best = best.max(dist[a]);
        for &b in &adj[a] {
            if dist[a] > f64::NEG_INFINITY {
                let cand = dist[a] + uf.weight[b];
                if cand > dist[b] {
                    dist[b] = cand;
                }
            }
            indeg[b] -= 1;
            if indeg[b] == 0 {
                queue.push(b);
            }
        }
    }
    if retired < total {
        // A reachable cycle survived contraction.
        return f64::INFINITY;
    }
    best
}

/// Shortest-path distances from `start` over the rep graph induced by
/// `edges`, charging node weights at both endpoints — the best-case
/// counterpart of [`longest_path`]. Unlike the longest path, the shortest
/// is well-defined even with residual cycles (extra laps only add
/// non-negative cost), so this is a plain heap-less Dijkstra. Unreached
/// reps stay at `INFINITY`.
fn shortest_dists(uf: &mut Contraction, edges: &[(usize, usize)], start: usize) -> Vec<f64> {
    let n = uf.parent.len();
    let start = uf.find(start);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        let (a, b) = (uf.find(a), uf.find(b));
        if a != b && !adj[a].contains(&b) {
            adj[a].push(b);
        }
    }
    let mut dist = vec![f64::INFINITY; n];
    dist[start] = uf.weight[start];
    let mut done = vec![false; n];
    loop {
        let mut u = usize::MAX;
        let mut best = f64::INFINITY;
        for (x, &d) in dist.iter().enumerate() {
            if !done[x] && d < best {
                best = d;
                u = x;
            }
        }
        if u == usize::MAX {
            break;
        }
        done[u] = true;
        for &v in &adj[u] {
            let cand = dist[u] + uf.weight[v];
            if cand < dist[v] {
                dist[v] = cand;
            }
        }
    }
    dist
}

/// Proven lower bound on the energy of any *complete* traversal of the
/// region (`active`, entered at `start_pc`): the shortest weighted path
/// from the checkpoint to any exit, with loops whose minimum trip count
/// was proven ([`crate::loop_bound`]) contracted at
/// `min_bound × cheapest-iteration`. Everything unprovable collapses to
/// a contribution of 0 — the result under-approximates by construction,
/// which is what lets `NVP-E006` treat "lower bound exceeds budget" as a
/// proof rather than a suspicion.
#[allow(clippy::too_many_arguments)] // internal solver; mirrors `solve` so the two stay diffable
pub(crate) fn solve_min(
    program: &Program,
    cfg: &Cfg,
    loops: &LoopReport,
    cost: &CostModel,
    active: &[bool],
    start_pc: usize,
    cut_reentry: bool,
    stop: impl Fn(usize) -> bool,
) -> f64 {
    let len = program.len();
    if len == 0 || !active[start_pc] {
        return 0.0;
    }
    let weights: Vec<f64> = (0..len)
        .map(|pc| {
            if active[pc] {
                cost.instr_nj(program.fetch(pc).expect("pc in range"))
            } else {
                0.0
            }
        })
        .collect();
    let mut uf = Contraction::new(weights);

    let mut edges: Vec<(usize, usize)> = Vec::new();
    for pc in 0..len {
        if !active[pc] || (stop(pc) && pc != start_pc) {
            continue;
        }
        for &s in cfg.succs(pc) {
            if active[s] && !(cut_reentry && s == start_pc) {
                edges.push((pc, s));
            }
        }
    }

    for l in &loops.loops {
        let member_pcs: Vec<usize> = l
            .members
            .iter()
            .flat_map(|&b| cfg.blocks()[b].pcs())
            .collect();
        let head = uf.find(l.head_pc(cfg));
        let mut in_loop = vec![false; len];
        for &pc in &member_pcs {
            in_loop[uf.find(pc)] = true;
        }
        let iter_edges: Vec<(usize, usize)> = edges
            .iter()
            .copied()
            .filter(|&(a, b)| {
                let (ra, rb) = (uf.find(a), uf.find(b));
                in_loop[ra] && in_loop[rb] && rb != head
            })
            .collect();
        let mut reach = vec![false; len];
        let mut stack = vec![head];
        while let Some(x) = stack.pop() {
            if reach[x] {
                continue;
            }
            reach[x] = true;
            for &(a, b) in &iter_edges {
                if uf.find(a) == x {
                    stack.push(uf.find(b));
                }
            }
        }
        let turns = edges.iter().any(|&(a, b)| {
            let (ra, rb) = (uf.find(a), uf.find(b));
            rb == head && in_loop[ra] && reach[ra]
        });
        if !turns {
            // The region severed the back edge: members are ordinary DAG
            // nodes paid at most once, exactly what the path sum charges.
            continue;
        }
        // The min-trip derivation assumed the latch terminator is the
        // only exit; a checkpoint inside the body adds one (the region
        // completes there), so the multiplied bound no longer holds.
        let internal_stop = member_pcs
            .iter()
            .any(|&pc| (stop(pc) && pc != start_pc) || (cut_reentry && pc == start_pc));
        let min_iter = if internal_stop || l.min_bound == 0 {
            0.0
        } else {
            // Cheapest single iteration: shortest head → latch-terminator
            // path (iterations are disjoint in time, so they sum).
            let dists = shortest_dists(&mut uf, &iter_edges, l.head_pc(cfg));
            l.latches
                .iter()
                .map(|&latch| dists[uf.find(cfg.blocks()[latch].end - 1)])
                .fold(f64::INFINITY, f64::min)
        };
        let total = if min_iter.is_finite() {
            l.min_bound as f64 * min_iter
        } else {
            0.0
        };
        uf.contract(&member_pcs, total);
    }

    // A complete traversal ends at a sink: a stop pc (its out-edges were
    // dropped) or a halt. Cheapest such path is the bound.
    let dists = shortest_dists(&mut uf, &edges, start_pc);
    let mut outdeg = vec![0usize; len];
    for &(a, b) in &edges {
        let (a, b) = (uf.find(a), uf.find(b));
        if a != b {
            outdeg[a] += 1;
        }
    }
    let best = (0..len)
        .filter(|&x| outdeg[x] == 0)
        .map(|x| dists[x])
        .fold(f64::INFINITY, f64::min);
    if best.is_finite() {
        best
    } else {
        0.0
    }
}

/// Solves the longest-path WCEC over the pcs in `active`, entering at
/// `start_pc`. `stop` marks pcs whose successors must not be crossed
/// (checkpoint boundaries); the stop pc itself is still charged. With
/// `cut_reentry`, edges *into* `start_pc` are dropped too: a path that
/// returns to the region's own checkpoint has completed the region, so a
/// loop wrapped around a checkpoint contributes one traversal per region,
/// not its whole trip count.
#[allow(clippy::too_many_arguments)] // internal solver; mirrors `solve_min` so the two stay diffable
pub(crate) fn solve(
    program: &Program,
    cfg: &Cfg,
    loops: &LoopReport,
    cost: &CostModel,
    active: &[bool],
    start_pc: usize,
    cut_reentry: bool,
    stop: impl Fn(usize) -> bool,
) -> f64 {
    let len = program.len();
    if len == 0 || !active[start_pc] {
        return 0.0;
    }
    let weights: Vec<f64> = (0..len)
        .map(|pc| {
            if active[pc] {
                cost.instr_nj(program.fetch(pc).expect("pc in range"))
            } else {
                0.0
            }
        })
        .collect();
    let mut uf = Contraction::new(weights);

    // Edge set under the region restriction.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for pc in 0..len {
        if !active[pc] || (stop(pc) && pc != start_pc) {
            continue;
        }
        for &s in cfg.succs(pc) {
            if active[s] && !(cut_reentry && s == start_pc) {
                edges.push((pc, s));
            }
        }
    }

    // Contract loops innermost-first (the report is sorted that way).
    for l in &loops.loops {
        let member_pcs: Vec<usize> = l
            .members
            .iter()
            .flat_map(|&b| cfg.blocks()[b].pcs())
            .collect();
        let head = uf.find(l.head_pc(cfg));
        let mut in_loop = vec![false; len];
        for &pc in &member_pcs {
            in_loop[uf.find(pc)] = true;
        }
        // Worst single iteration: longest path from the head inside the
        // loop with the back edges (rep edges into the head) removed.
        let iter_edges: Vec<(usize, usize)> = edges
            .iter()
            .copied()
            .filter(|&(a, b)| {
                let (ra, rb) = (uf.find(a), uf.find(b));
                in_loop[ra] && in_loop[rb] && rb != head
            })
            .collect();
        // The loop only multiplies if it can still turn under this edge
        // set: a surviving back edge whose latch the head still reaches.
        // A checkpoint inside the loop body severs exactly this — each
        // turn completes the region — and then the members stay ordinary
        // DAG nodes, paid once per traversal.
        let mut reach = vec![false; len];
        let mut stack = vec![head];
        while let Some(x) = stack.pop() {
            if reach[x] {
                continue;
            }
            reach[x] = true;
            for &(a, b) in &iter_edges {
                if uf.find(a) == x {
                    stack.push(uf.find(b));
                }
            }
        }
        let turns = edges.iter().any(|&(a, b)| {
            let (ra, rb) = (uf.find(a), uf.find(b));
            rb == head && in_loop[ra] && reach[ra]
        });
        if !turns {
            continue;
        }
        let iter_nj = longest_path(&mut uf, &iter_edges, l.head_pc(cfg));
        let trips = match l.bound {
            TripBound::Bounded(n) => n as f64,
            TripBound::Unbounded => f64::INFINITY,
        };
        // An inactive loop body costs nothing no matter how often it could
        // turn — and 0 × ∞ must be 0 here, not NaN.
        let total = if iter_nj == 0.0 { 0.0 } else { trips * iter_nj };
        uf.contract(&member_pcs, total);
    }

    longest_path(&mut uf, &edges, start_pc)
}

/// Every declared checkpoint of `program`, sorted by pc.
pub fn declared_checkpoints(program: &Program) -> Vec<(usize, RegionKind)> {
    (0..program.len())
        .filter_map(|pc| checkpoint_kind(program, pc).map(|k| (pc, k)))
        .collect()
}

/// Computes the full WCEC certificate of `program` at the governor
/// bitwidth of `cost` (loop bounds are re-derived at that bitwidth, since
/// AC noise widens counter intervals).
pub fn wcec_report(program: &Program, cfg: &Cfg, cost: &CostModel) -> WcecReport {
    wcec_report_at(program, cfg, cost, &declared_checkpoints(program))
}

/// [`wcec_report`] over an *explicit* checkpoint set — the entry point
/// placement synthesis uses to price candidate placements. `checkpoints`
/// must be sorted by pc and include pc 0; regions are cut at exactly
/// these pcs (the declared set is ignored).
pub fn wcec_report_at(
    program: &Program,
    cfg: &Cfg,
    cost: &CostModel,
    checkpoints: &[(usize, RegionKind)],
) -> WcecReport {
    let loops = loop_report(program, cfg, cost.bits);
    let len = program.len();

    let block_nj: Vec<f64> = cfg
        .blocks()
        .iter()
        .map(|b| {
            b.pcs()
                .map(|pc| cost.instr_nj(program.fetch(pc).expect("pc in range")))
                .sum()
        })
        .collect();

    let all_active = vec![true; len];
    let program_wcec = if len == 0 {
        Wcec::Bounded(0.0)
    } else {
        Wcec::from_nj(solve(
            program,
            cfg,
            &loops,
            cost,
            &all_active,
            0,
            false,
            |_| false,
        ))
    };

    // One region per checkpoint.
    let mut is_checkpoint = vec![false; len];
    for &(pc, _) in checkpoints {
        if pc < len {
            is_checkpoint[pc] = true;
        }
    }
    let regions = checkpoints
        .iter()
        .copied()
        .map(|(start_pc, kind)| {
            let pcs = cfg.reachable_until(start_pc, |pc| pc != start_pc && is_checkpoint[pc]);
            let mut active = vec![false; len];
            for &pc in &pcs {
                active[pc] = true;
            }
            let wcec = Wcec::from_nj(solve(
                program,
                cfg,
                &loops,
                cost,
                &active,
                start_pc,
                true,
                |pc| is_checkpoint[pc],
            ));
            let min_nj = solve_min(program, cfg, &loops, cost, &active, start_pc, true, |pc| {
                is_checkpoint[pc]
            });
            Region {
                start_pc,
                kind,
                pcs,
                wcec,
                min_nj,
            }
        })
        .collect();

    WcecReport {
        bits: cost.bits,
        block_nj,
        loops,
        regions,
        program: program_wcec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::vm::Vm;
    use nvp_isa::{ProgramBuilder, Reg};

    fn report(p: &Program, bits: u8) -> WcecReport {
        wcec_report(p, &Cfg::build(p), &CostModel::for_bits(bits))
    }

    #[test]
    fn straight_line_program_sums_its_instructions() {
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 1).addi(Reg(1), Reg(0), 2).halt();
        let p = b.build().unwrap();
        let cost = CostModel::for_bits(8);
        let expected: f64 = (0..p.len())
            .map(|pc| cost.instr_nj(p.fetch(pc).unwrap()))
            .sum();
        let r = report(&p, 8);
        assert_eq!(r.program, Wcec::Bounded(expected));
        assert_eq!(r.block_nj.len(), 1);
        assert!((r.block_nj[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn branch_takes_the_more_expensive_arm() {
        // if (r0) { mul } else { nop } — the bound must price the mul arm.
        let mut b = ProgramBuilder::new();
        let (cheap, join) = (b.label(), b.label());
        b.ldi(Reg(0), 1).brz(Reg(0), cheap);
        b.mul(Reg(1), Reg(1), Reg(1)).jmp(join);
        b.place(cheap).mov(Reg(2), Reg(2));
        b.place(join).halt();
        let p = b.build().unwrap();
        let cost = CostModel::for_bits(8);
        let r = report(&p, 8);
        let Wcec::Bounded(total) = r.program else {
            panic!("expected bounded")
        };
        let mul_path: f64 = [0usize, 1, 2, 3, 5]
            .iter()
            .map(|&pc| cost.instr_nj(p.fetch(pc).unwrap()))
            .sum();
        assert!((total - mul_path).abs() < 1e-9, "{total} vs {mul_path}");
    }

    #[test]
    fn bounded_loop_multiplies_iteration_cost() {
        // 10-trip counting loop: body cost × 10 plus prologue/epilogue.
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ldi(n, 10);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let p = b.build().unwrap();
        let cost = CostModel::for_bits(8);
        let r = report(&p, 8);
        let iter = cost.instr_nj(p.fetch(2).unwrap()) + cost.instr_nj(p.fetch(3).unwrap());
        let pre = cost.instr_nj(p.fetch(0).unwrap()) + cost.instr_nj(p.fetch(1).unwrap());
        let halt = cost.instr_nj(p.fetch(4).unwrap());
        let expected = pre + 10.0 * iter + halt;
        let Wcec::Bounded(total) = r.program else {
            panic!("expected bounded")
        };
        assert!((total - expected).abs() < 1e-9, "{total} vs {expected}");
    }

    #[test]
    fn unbounded_loop_makes_the_program_unbounded() {
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ld(n, 3);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        assert_eq!(r.program, Wcec::Unbounded);
        assert!(r.regions.iter().any(|rg| rg.wcec == Wcec::Unbounded));
    }

    #[test]
    fn resume_marks_split_regions_and_cap_their_cost() {
        // prologue; mark_resume; expensive loop; frame_done; halt.
        // The entry region stops at the mark: it must not pay for the loop.
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ldi(n, 50);
        b.mark_resume(0);
        let top = b.label();
        b.place(top);
        b.mul(Reg(2), Reg(2), Reg(2)).addi(i, i, 1).brlt(i, n, top);
        b.frame_done().halt();
        let p = b.build().unwrap();
        let r = report(&p, 8);
        let kinds: Vec<RegionKind> = r.regions.iter().map(|rg| rg.kind).collect();
        assert_eq!(
            kinds,
            vec![
                RegionKind::Entry,
                RegionKind::Resume(0),
                RegionKind::PostFrame
            ]
        );
        let entry = &r.regions[0];
        let resume = &r.regions[1];
        let (Wcec::Bounded(e), Wcec::Bounded(m)) = (entry.wcec, resume.wcec) else {
            panic!("expected bounded regions")
        };
        // The loop costs two orders of magnitude more than the prologue.
        assert!(e < m / 10.0, "entry {e} vs resume {m}");
        // Entry region: ldi, ldi, and the mark itself.
        assert_eq!(entry.pcs, vec![0, 1, 2]);
    }

    #[test]
    fn wcec_is_an_upper_bound_on_a_real_run() {
        // Walk the VM and charge every retired instruction at the static
        // price; the certificate must dominate the actual total.
        let mut b = ProgramBuilder::new();
        let (i, n, acc) = (Reg(0), Reg(1), Reg(2));
        b.ldi(i, 0).ldi(n, 20).ldi(acc, 1);
        let top = b.label();
        b.place(top);
        b.muli(acc, acc, 3)
            .mini(acc, acc, 127)
            .addi(i, i, 1)
            .brlt(i, n, top);
        b.st(0, acc).halt();
        let p = b.build().unwrap();
        let cost = CostModel::for_bits(8);
        let r = report(&p, 8);

        let mut vm = Vm::new(p.clone(), 16);
        let mut actual = 0.0;
        for _ in 0..10_000 {
            let Some(instr) = vm.peek() else { break };
            actual += cost.instr_nj(instr);
            if vm.step().unwrap() == nvp_isa::StepEvent::Halted {
                break;
            }
        }
        let Wcec::Bounded(total) = r.program else {
            panic!("expected bounded")
        };
        assert!(actual > 0.0);
        assert!(total >= actual, "certificate {total} below actual {actual}");
        // The region floor brackets the same run from below.
        let entry = &r.regions[0];
        assert!(entry.min_nj > 0.0, "nothing proven for a fully exact loop");
        assert!(
            entry.min_nj <= actual + 1e-9,
            "floor {} above actual {actual}",
            entry.min_nj
        );
    }

    #[test]
    fn exact_single_path_loop_has_matching_floor_and_ceiling() {
        // One path, exact init and limit: min and max must coincide.
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ldi(n, 10);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        let entry = &r.regions[0];
        let Wcec::Bounded(ceiling) = entry.wcec else {
            panic!("expected bounded")
        };
        assert!(
            (entry.min_nj - ceiling).abs() < 1e-9,
            "floor {} vs ceiling {ceiling}",
            entry.min_nj
        );
    }

    #[test]
    fn unknown_trip_count_keeps_the_floor_honest_and_small() {
        // Data-dependent limit: the ceiling is unbounded, and the floor
        // must claim no more than a single proven iteration.
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ld(n, 3);
        let top = b.label();
        b.place(top);
        b.mul(Reg(2), Reg(2), Reg(2)).addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let r = report(&b.build().unwrap(), 8);
        let entry = &r.regions[0];
        assert_eq!(entry.wcec, Wcec::Unbounded);
        assert!(
            entry.min_nj > 0.0 && entry.min_nj < 5.0,
            "floor {} should be roughly one cheap pass",
            entry.min_nj
        );
    }

    #[test]
    fn narrower_bits_certify_lower_energy() {
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ldi(n, 30);
        let top = b.label();
        b.place(top);
        b.mul(Reg(2), Reg(2), Reg(2)).addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let p = b.build().unwrap();
        let r8 = report(&p, 8);
        let r2 = report(&p, 2);
        let (Wcec::Bounded(w8), Wcec::Bounded(w2)) = (r8.program, r2.program) else {
            panic!("expected bounded at both widths")
        };
        assert!(w2 < w8, "2b {w2} not below 8b {w8}");
    }

    #[test]
    fn empty_and_trivial_programs_do_not_panic() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let r = report(&p, 8);
        assert!(r.program.is_bounded());
        assert_eq!(r.regions.len(), 1);
        assert_eq!(r.regions[0].kind, RegionKind::Entry);
    }
}
