//! Interval (value-range) abstract domain over the VM's `i32` values.
//!
//! Bounds are held as `i64` so transfer functions can compute exact
//! result ranges before deciding whether they still fit the concrete
//! `i32` domain; every stored interval satisfies
//! `i32::MIN <= lo <= hi <= i32::MAX`.
//!
//! Two kinds of imprecision are distinguished:
//!
//! * a **wide** interval (up to ⊤ = `[i32::MIN, i32::MAX]`) simply means
//!   the analysis does not know the value;
//! * the [`Interval::wrapped`] flag means the *concrete machine itself*
//!   may have wrapped: the exact mathematical result of some operation on
//!   the path to this value exceeded `i32` and the VM's wrapping
//!   arithmetic silently folded it. A wrapped loop counter or address is
//!   unsafe at *any* bitwidth — that is the `NVP-E005` condition — so the
//!   flag is sticky through further arithmetic and through memory.
//!
//! The domain has infinite ascending chains (`[0,1] ⊂ [0,2] ⊂ …`), so
//! fixpoints use a threshold-ladder widening ([`Interval::widen`]): grown
//! bounds jump to the nearest "interesting" program constant scale
//! (`0`, `±1`, byte, 16-bit, full range) rather than creeping one step
//! per loop iteration. Post-fixpoint narrowing sweeps
//! ([`crate::dataflow::narrow`]) then recover precision bounded by branch
//! conditions.

/// The bounds that ladder widening jumps to. Chosen to match the scales
/// kernels actually use: flags (`0/±1`), 8-bit pixels, 16-bit frame
/// offsets, full range.
const WIDEN_LADDER: [i64; 9] = [
    i32::MIN as i64,
    -(1 << 16),
    -256,
    -1,
    0,
    1,
    255,
    1 << 16,
    i32::MAX as i64,
];

/// A value range `[lo, hi]` (inclusive) with a sticky concrete-wraparound
/// flag. See the module docs for the meaning of [`Interval::wrapped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (always within `i32`).
    pub lo: i64,
    /// Upper bound (always within `i32`).
    pub hi: i64,
    /// The concrete machine may have wrapped producing this value.
    pub wrapped: bool,
}

impl Interval {
    /// The single value `v`.
    pub fn exact(v: i32) -> Interval {
        Interval {
            lo: v as i64,
            hi: v as i64,
            wrapped: false,
        }
    }

    /// The range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(lo: i32, hi: i32) -> Interval {
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        Interval {
            lo: lo as i64,
            hi: hi as i64,
            wrapped: false,
        }
    }

    /// The full `i32` range (unknown value, no wraparound claim).
    pub fn top() -> Interval {
        Interval {
            lo: i32::MIN as i64,
            hi: i32::MAX as i64,
            wrapped: false,
        }
    }

    /// Builds the interval for an exact mathematical result range
    /// `[lo, hi]`: if it exceeds `i32` the machine may wrap, so the
    /// result is ⊤ with [`Interval::wrapped`] set.
    pub fn of_i64(lo: i64, hi: i64) -> Interval {
        debug_assert!(lo <= hi);
        if lo < i32::MIN as i64 || hi > i32::MAX as i64 {
            Interval {
                wrapped: true,
                ..Interval::top()
            }
        } else {
            Interval {
                lo,
                hi,
                wrapped: false,
            }
        }
    }

    /// Does the range contain `v`?
    pub fn contains(&self, v: i32) -> bool {
        self.lo <= v as i64 && v as i64 <= self.hi
    }

    /// Range diameter `hi - lo` (0 for an exact value).
    pub fn diam(&self) -> u64 {
        (self.hi - self.lo) as u64
    }

    /// The single value, if the range is a point.
    pub fn as_exact(&self) -> Option<i32> {
        (self.lo == self.hi).then_some(self.lo as i32)
    }

    /// Largest absolute value in the range (as `u64`, so `i32::MIN` is
    /// representable).
    pub fn max_abs(&self) -> u64 {
        self.lo.unsigned_abs().max(self.hi.unsigned_abs())
    }

    /// Least upper bound: the convex hull, wraparound sticky.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            wrapped: self.wrapped || other.wrapped,
        }
    }

    /// Intersection, or `None` if the ranges are disjoint (an infeasible
    /// path). Wraparound stays sticky: refinement narrows the range but
    /// cannot retract that the machine may already have wrapped.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval {
            lo,
            hi,
            wrapped: self.wrapped,
        })
    }

    /// Threshold-ladder widening: an upper bound of both arguments where
    /// a bound that grew past `prev` jumps to the nearest enclosing
    /// ladder rung. Guarantees termination — each bound can only move
    /// monotonically along the finite ladder.
    pub fn widen(prev: &Interval, next: &Interval) -> Interval {
        let j = prev.join(next);
        let lo = if j.lo < prev.lo {
            *WIDEN_LADDER
                .iter()
                .rev()
                .find(|&&t| t <= j.lo)
                .expect("ladder bottoms at i32::MIN")
        } else {
            j.lo
        };
        let hi = if j.hi > prev.hi {
            *WIDEN_LADDER
                .iter()
                .find(|&&t| t >= j.hi)
                .expect("ladder tops at i32::MAX")
        } else {
            j.hi
        };
        Interval {
            lo,
            hi,
            wrapped: j.wrapped,
        }
    }

    fn binary(a: &Interval, b: &Interval, lo: i64, hi: i64) -> Interval {
        let mut r = Interval::of_i64(lo, hi);
        r.wrapped |= a.wrapped || b.wrapped;
        r
    }

    /// `a + b` under the VM's wrapping add.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval::binary(self, other, self.lo + other.lo, self.hi + other.hi)
    }

    /// `a - b` under the VM's wrapping subtract.
    pub fn sub(&self, other: &Interval) -> Interval {
        Interval::binary(self, other, self.lo - other.hi, self.hi - other.lo)
    }

    /// `a * b` under the VM's wrapping multiply.
    pub fn mul(&self, other: &Interval) -> Interval {
        let ps = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        Interval::binary(
            self,
            other,
            *ps.iter().min().expect("non-empty"),
            *ps.iter().max().expect("non-empty"),
        )
    }

    /// `a << s` for a known shift amount (the VM masks shifts mod 32).
    pub fn shl_const(&self, s: u32) -> Interval {
        let s = s & 31;
        Interval::binary(self, self, self.lo << s, self.hi << s)
    }

    /// `a >> s`, arithmetic, for a known shift amount (the VM clamps the
    /// shift to 31). Monotone in `a`, never overflows.
    pub fn shr_const(&self, s: u32) -> Interval {
        let s = s.min(31);
        Interval {
            lo: self.lo >> s,
            hi: self.hi >> s,
            wrapped: self.wrapped,
        }
    }

    fn bitop_hull(a: &Interval, b: &Interval, and: bool) -> (i64, i64) {
        if a.lo >= 0 && b.lo >= 0 {
            if and {
                // `x & y <= min(x, y)` for non-negative operands.
                (0, a.hi.min(b.hi))
            } else {
                // or/xor cannot set a bit above both operands' leading
                // bits: bounded by the next power of two.
                let top = (a.hi.max(b.hi) as u64).next_power_of_two() as i64;
                (0, (2 * top - 1).min(i32::MAX as i64))
            }
        } else {
            (i32::MIN as i64, i32::MAX as i64)
        }
    }

    /// `a & b`. Bitops never wrap; precise bounds for non-negative
    /// operands, ⊤-range otherwise.
    pub fn and(&self, other: &Interval) -> Interval {
        let (lo, hi) = Interval::bitop_hull(self, other, true);
        Interval {
            lo,
            hi,
            wrapped: self.wrapped || other.wrapped,
        }
    }

    /// `a | b` / `a ^ b` (same hull).
    pub fn or_xor(&self, other: &Interval) -> Interval {
        let (lo, hi) = Interval::bitop_hull(self, other, false);
        Interval {
            lo,
            hi,
            wrapped: self.wrapped || other.wrapped,
        }
    }

    /// `min(a, b)`.
    pub fn min(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
            wrapped: self.wrapped || other.wrapped,
        }
    }

    /// `max(a, b)`.
    pub fn max(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
            wrapped: self.wrapped || other.wrapped,
        }
    }

    /// `|a|` under the VM's `wrapping_abs` (`|i32::MIN|` wraps to
    /// itself).
    pub fn abs(&self) -> Interval {
        if self.contains(i32::MIN) {
            return Interval {
                wrapped: true,
                ..Interval::top()
            };
        }
        let (lo, hi) = if self.lo >= 0 {
            (self.lo, self.hi)
        } else if self.hi <= 0 {
            (-self.hi, -self.lo)
        } else {
            (0, (-self.lo).max(self.hi))
        };
        Interval {
            lo,
            hi,
            wrapped: self.wrapped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_hulls_are_exact_for_small_ranges() {
        let a = Interval::range(-2, 3);
        let b = Interval::range(1, 4);
        assert_eq!(a.add(&b), Interval::range(-1, 7));
        assert_eq!(a.sub(&b), Interval::range(-6, 2));
        assert_eq!(a.mul(&b), Interval::range(-8, 12));
        assert_eq!(a.abs(), Interval::range(0, 3));
        assert_eq!(a.min(&b), Interval::range(-2, 3));
        assert_eq!(a.max(&b), Interval::range(1, 4));
    }

    #[test]
    fn overflowing_result_becomes_wrapped_top() {
        let big = Interval::range(i32::MAX - 1, i32::MAX);
        let r = big.add(&Interval::exact(5));
        assert!(r.wrapped);
        assert_eq!((r.lo, r.hi), (i32::MIN as i64, i32::MAX as i64));
        // The flag then sticks through precise follow-up arithmetic.
        let clamped = r.min(&Interval::exact(10));
        assert!(clamped.wrapped);
    }

    #[test]
    fn shifts_follow_vm_semantics() {
        let a = Interval::range(-8, 8);
        assert_eq!(a.shl_const(2), Interval::range(-32, 32));
        assert_eq!(a.shr_const(2), Interval::range(-2, 2));
        assert!(Interval::exact(1 << 30).shl_const(2).wrapped);
        // Shift amounts are masked mod 32 like `wrapping_shl`.
        assert_eq!(a.shl_const(32), a);
    }

    #[test]
    fn bitops_bound_nonnegative_operands() {
        let a = Interval::range(0, 100);
        let b = Interval::range(0, 9);
        assert_eq!(a.and(&b), Interval::range(0, 9));
        let o = a.or_xor(&b);
        assert!(o.lo == 0 && o.hi >= 127 && !o.wrapped);
    }

    #[test]
    fn abs_of_i32_min_wraps() {
        let r = Interval::range(i32::MIN, 0).abs();
        assert!(r.wrapped);
    }

    #[test]
    fn intersect_detects_infeasible_paths() {
        let a = Interval::range(5, 9);
        assert_eq!(
            a.intersect(&Interval::range(0, 6)),
            Some(Interval::range(5, 6))
        );
        assert_eq!(a.intersect(&Interval::range(10, 20)), None);
    }

    #[test]
    fn widening_jumps_to_ladder_rungs_and_terminates() {
        let mut cur = Interval::exact(0);
        let mut steps = 0;
        let mut rungs = Vec::new();
        loop {
            // A loop counter growing by one per iteration.
            let next = cur.join(&cur.add(&Interval::exact(1)));
            let widened = Interval::widen(&cur, &next);
            if widened == cur {
                break;
            }
            cur = widened;
            rungs.push(cur.hi);
            steps += 1;
            assert!(steps < 10, "widening must terminate quickly");
        }
        // The upper bound climbs the ladder instead of creeping by one;
        // once it reaches i32::MAX the increment wraps and the chain
        // closes at ⊤ with the wrap recorded.
        assert!(
            rungs.contains(&255) && rungs.contains(&(i32::MAX as i64)),
            "{rungs:?}"
        );
        assert_eq!(cur.hi, i32::MAX as i64);
        assert!(cur.wrapped);
        // Widening never shrinks: it upper-bounds both arguments
        // (narrowing sweeps recover precision afterwards).
        let kept = Interval::widen(&Interval::range(0, 8), &Interval::range(2, 8));
        assert_eq!(kept, Interval::range(0, 8));
    }

    // Loop-counter patterns the trip-count bounder leans on: each test
    // plays the fixpoint a loop head would see, by hand, and checks the
    // invariant the WCEC analysis reads off at the end.

    #[test]
    fn strided_increment_widens_then_narrows_to_the_guard() {
        // for (i = 0; i < 100; i += 5): head = join(init, backedge).
        let init = Interval::exact(0);
        let stride = Interval::exact(5);
        let guard = Interval::range(i32::MIN, 99); // i < 100 (taken edge)
        let mut head = init;
        loop {
            let body = head.intersect(&guard).expect("loop entered").add(&stride);
            let next = Interval::widen(&head, &head.join(&body));
            if next == head {
                break;
            }
            head = next;
        }
        // Widening overshot to a ladder rung, not the tight bound.
        assert_eq!(head.hi, 255);
        // One narrowing sweep recovers the guard-limited invariant.
        let narrowed = init.join(&head.intersect(&guard).unwrap().add(&stride));
        assert_eq!(narrowed, Interval::range(0, 104));
        assert!(!narrowed.wrapped);
        // Every concrete counter value the loop produces is inside.
        for v in (0..=100).step_by(5) {
            assert!(narrowed.contains(v));
        }
    }

    #[test]
    fn decrement_to_zero_counter_never_goes_negative() {
        // i = 50; do { i -= 1 } while (i != 0): the brnz-taken edge
        // refines away the zero endpoint before the decrement.
        let init = Interval::exact(50);
        let one = Interval::exact(1);
        let mut head = init;
        loop {
            let nonzero = if head.lo == 0 {
                Interval {
                    lo: 1,
                    hi: head.hi.max(1),
                    wrapped: head.wrapped,
                }
            } else {
                head
            };
            let next = head.join(&nonzero.sub(&one));
            if next == head {
                break;
            }
            head = next;
        }
        assert_eq!(head, Interval::range(0, 50));
        assert!(head.contains(0) && head.contains(50) && !head.contains(-1));
    }

    #[test]
    fn widened_then_narrowed_interval_is_sound_not_exact() {
        // Narrowing recovers precision but must stay an over-approximation:
        // the recovered range may keep slack past the last guard test.
        let guard = Interval::range(i32::MIN, 9); // i < 10
        let widened = Interval::range(0, 255); // post-widening head
        let narrowed =
            Interval::exact(0).join(&widened.intersect(&guard).unwrap().add(&Interval::exact(3)));
        assert_eq!(narrowed, Interval::range(0, 12));
        // Sound: contains every reachable value (0,3,6,9,12)…
        for v in (0..=12).step_by(3) {
            assert!(narrowed.contains(v));
        }
        // …and strictly tighter than the widened state it refines.
        assert!(narrowed.hi < widened.hi);
    }

    #[test]
    fn wraparound_taint_is_sticky_through_counter_algebra() {
        // A counter that may have wrapped stays wrapped through every
        // operation a loop body applies to it — join with a clean init,
        // guard intersection, increments, clamps.
        let mut i = Interval::range(i32::MAX - 2, i32::MAX).add(&Interval::exact(4));
        assert!(i.wrapped);
        i = i.intersect(&Interval::range(0, 1000)).expect("nonempty");
        assert!(i.wrapped, "guard intersection must not launder the wrap");
        i = Interval::exact(0).join(&i);
        assert!(i.wrapped, "join with a clean init must not launder");
        i = i.add(&Interval::exact(1)).min(&Interval::exact(255));
        assert!(i.wrapped, "arithmetic must not launder");
        // A clean counter over the same ranges stays clean.
        let clean = Interval::exact(0).join(&Interval::range(0, 255));
        assert!(!clean.wrapped);
    }
}
