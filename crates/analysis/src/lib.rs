//! `nvp-analysis`: a multi-pass static-analysis framework for NVP
//! programs.
//!
//! The seed repo validated programs with a single linear scan
//! (`nvp_isa::analysis::verify_ac_isolation`) that is unsound across
//! loop back-edges and blind to memory. This crate replaces it with a
//! proper pass infrastructure over [`nvp_isa::Program`]:
//!
//! * [`cfg`] — basic-block discovery and a per-pc control-flow graph;
//! * [`dataflow`] — a generic worklist fixpoint engine (forward and
//!   backward, whole-program and region-restricted);
//! * [`liveness`] — backward register liveness;
//! * [`reaching`] — forward reaching definitions;
//! * [`taint`] — a flow-sensitive approximation-taint lattice over
//!   registers *and* memory, generalizing AC-isolation checking
//!   (`NVP-E001`..`E003`);
//! * [`war`] — write-after-read / idempotency hazards inside
//!   roll-forward regions (`NVP-W001`);
//! * [`backup_liveness`] — live register sets at backup points, feeding
//!   the sim's live-only backup scope (`NVP-I001`, `NVP-W002`);
//! * [`lattice`] — the shared symbolic-memory naming and join/meet
//!   combinators the memory-aware passes are built on;
//! * [`interval`] / [`error_bound`] — a value-range abstract domain with
//!   widening/narrowing, coupled with worst-case deviation bounds for
//!   the VM's approximation semantics;
//! * [`safe_bits`] — statically proven safe bitwidth floors per
//!   instruction/block/program (`NVP-E004`, `NVP-E005`, `NVP-W003`),
//!   feeding `nvp-lint --bitwidth` and the sim's governor clamp;
//! * [`loop_bound`] — natural-loop discovery with trip-count bounds
//!   derived from the interval invariants;
//! * [`cost_model`] / [`wcec`] — static per-instruction energy pricing
//!   (sharing the simulator's calibrated model) and whole-program
//!   worst-case energy certificates per block, per
//!   checkpoint-to-checkpoint region, and per program;
//! * [`wcec_lint`] — forward-progress lints over the certificates
//!   (`NVP-E006` provable livelock, `NVP-W004` unknown loop bound,
//!   `NVP-I002` energy headroom), driving `nvp-lint --energy`;
//! * [`dirty`] — per-region sound upper bounds on the registers and
//!   memory words any execution can write between two checkpoints,
//!   intersected with backup liveness into per-pc `live ∩ dirty`
//!   backup masks;
//! * [`ckpt_place`] — checkpoint placement synthesis: searches over
//!   checkpoint sets, rejecting placements that are not provably
//!   re-executable or exceed the capacitor WCEC ceiling, minimizing
//!   expected backup energy, and emitting a machine-checkable
//!   certificate (`NVP-E007`, `NVP-W005`, `NVP-I003`), driving
//!   `nvp-lint --checkpoint`.
//!
//! Passes share a [`PassContext`] and report [`Diagnostic`]s with stable
//! lint codes. [`analyze_program`] runs the default pipeline; the
//! `nvp-lint` binary applies it to every kernel generator in
//! `nvp-kernels` and exits non-zero on violations.
//!
//! ```
//! use nvp_analysis::{analyze_program, AnalysisConfig};
//! use nvp_isa::{ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! b.ldi(Reg(0), 1).st(0, Reg(0)).halt();
//! let program = b.build().unwrap();
//! let report = analyze_program(&program, &AnalysisConfig::default());
//! assert!(!report.has_errors());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backup_liveness;
pub mod cfg;
pub mod ckpt_place;
pub mod cost_model;
pub mod dataflow;
pub mod diag;
pub mod dirty;
pub mod error_bound;
pub mod hints;
pub mod interval;
pub mod lattice;
pub mod liveness;
pub mod loop_bound;
pub mod reaching;
pub mod safe_bits;
pub mod taint;
pub mod war;
pub mod wcec;
pub mod wcec_lint;

pub use backup_liveness::{BackupLiveness, BackupLivenessPass};
pub use cfg::Cfg;
pub use ckpt_place::{synthesize, CkptOptions, CkptPass, PlacementEval, RegionCert, Synthesis};
pub use cost_model::{CostModel, EnergyBudget};
pub use diag::{Diagnostic, Json, LintCode, Severity};
pub use dirty::{dirty_report, dirty_report_at, DirtyAnalyzer, DirtyReport, MemDirty, RegionDirty};
pub use error_bound::{dev_bound, solve_error_bounds, AbsVal, ApproxState, ErrorBoundAnalysis};
pub use hints::compile_hints;
pub use interval::Interval;
pub use liveness::{liveness, Liveness};
pub use loop_bound::{find_loops, loop_report, LoopReport, NaturalLoop, TripBound};
pub use reaching::{reaching, Reaching, ENTRY_DEF};
pub use safe_bits::{
    bitwidth_report, static_floor, BitwidthPass, BitwidthReport, DeclaredBits, NEVER_SAFE,
};
pub use taint::TaintPass;
pub use war::{region_hazards, WarPass};
pub use wcec::{
    checkpoint_kind, declared_checkpoints, wcec_report, wcec_report_at, Region, RegionKind, Wcec,
    WcecReport,
};
pub use wcec_lint::WcecPass;

use nvp_isa::Program;

/// Knobs shared by every pass.
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    /// Registers whose taint is deliberately accepted at use sites
    /// (kernel-declared sanitization, e.g. a value about to be clamped).
    /// Mirrors the `sanitized` argument of the legacy
    /// `verify_ac_isolation_with`.
    pub sanitized_regs: u16,
    /// Total data-memory words, when known (kernel specs carry it). Lets
    /// the bitwidth pass prove sanitized address ranges in bounds.
    pub mem_words: Option<usize>,
    /// The kernel's declared governor operating range. `None` disables
    /// the bitwidth lints (there is no declaration to judge).
    pub declared: Option<DeclaredBits>,
}

/// Everything a pass needs to run: the program, its CFG, and the shared
/// configuration.
#[derive(Debug, Clone, Copy)]
pub struct PassContext<'a> {
    /// The program under analysis.
    pub program: &'a Program,
    /// Its control-flow graph.
    pub cfg: &'a Cfg,
    /// Shared analysis configuration.
    pub config: &'a AnalysisConfig,
}

/// A static-analysis pass over one program.
pub trait Pass {
    /// Stable pass name (used by `nvp-lint` output).
    fn name(&self) -> &'static str;
    /// Runs the pass, returning any diagnostics.
    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic>;
}

/// The default lint pipeline: taint, WAR-hazard, backup-liveness,
/// bitwidth safety.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(TaintPass),
        Box::new(WarPass),
        Box::new(BackupLivenessPass),
        Box::new(BitwidthPass),
    ]
}

/// The combined result of running a pass pipeline over one program.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// All diagnostics, sorted most-severe first, then by pc.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// `true` if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.count_at_least(Severity::Error) > 0
    }

    /// Number of diagnostics at or above `floor`.
    pub fn count_at_least(&self, floor: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() >= floor)
            .count()
    }

    /// Diagnostics at or above `floor`, in report order.
    pub fn at_least(&self, floor: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity() >= floor)
    }
}

/// Runs the default pass pipeline over `program`.
pub fn analyze_program(program: &Program, config: &AnalysisConfig) -> AnalysisReport {
    analyze_with(program, config, &default_passes())
}

/// Runs an explicit pass pipeline over `program`.
pub fn analyze_with(
    program: &Program,
    config: &AnalysisConfig,
    passes: &[Box<dyn Pass>],
) -> AnalysisReport {
    let cfg = Cfg::build(program);
    let cx = PassContext {
        program,
        cfg: &cfg,
        config,
    };
    let mut diagnostics: Vec<Diagnostic> = passes.iter().flat_map(|p| p.run(&cx)).collect();
    diagnostics.sort_by(|a, b| {
        b.severity()
            .cmp(&a.severity())
            .then(a.pc.unwrap_or(usize::MAX).cmp(&b.pc.unwrap_or(usize::MAX)))
    });
    AnalysisReport { diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::{ProgramBuilder, Reg};

    #[test]
    fn clean_program_yields_only_info() {
        let mut b = ProgramBuilder::new();
        b.mark_resume(0)
            .ldi(Reg(0), 1)
            .st(0, Reg(0))
            .frame_done()
            .halt();
        let p = b.build().unwrap();
        let r = analyze_program(&p, &AnalysisConfig::default());
        assert!(!r.has_errors());
        assert_eq!(r.count_at_least(Severity::Warning), 0);
        // The resume marker still yields its informational live-set line.
        assert_eq!(r.count_at_least(Severity::Info), 1);
    }

    #[test]
    fn report_sorted_most_severe_first() {
        // Branch on an AC register (error) + a WAR hazard (warning) in one
        // program: the error must sort first regardless of pc order.
        let mut b = ProgramBuilder::new();
        let end = b.label();
        b.mark_resume(0)
            .ld(Reg(0), 50)
            .addi(Reg(0), Reg(0), 1)
            .st(50, Reg(0)) // WAR hazard at pc 3
            .ldi(Reg(1), 0)
            .brz(Reg(2), end) // r2 is AC: branch-on-approx at pc 5
            .frame_done();
        b.place(end);
        b.halt();
        b.mark_ac(Reg(2));
        let p = b.build().unwrap();
        let r = analyze_program(&p, &AnalysisConfig::default());
        assert!(r.has_errors());
        let sevs: Vec<Severity> = r.diagnostics.iter().map(|d| d.severity()).collect();
        let mut sorted = sevs.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(sevs, sorted);
        assert_eq!(r.diagnostics[0].code, LintCode::BranchOnApprox);
    }
}
