//! Basic-block discovery and control-flow graph construction.
//!
//! The CFG is built at two granularities: per-instruction successor /
//! predecessor edges (what the dataflow engine iterates over — programs
//! are a few hundred instructions, so per-pc fixpoints are cheap and keep
//! the transfer functions trivial) and maximal basic blocks (for
//! structural queries and reverse-post-order scheduling).

use nvp_isa::{Instr, Program};

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index (the leader).
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

impl BasicBlock {
    /// Instruction indices of this block.
    pub fn pcs(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// The control-flow graph of a [`Program`].
#[derive(Debug, Clone)]
pub struct Cfg {
    len: usize,
    blocks: Vec<BasicBlock>,
    block_of: Vec<usize>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

/// Successor pcs of the instruction at `pc` (pure control-flow semantics:
/// `halt` has none, branches have target + fallthrough, everything else
/// falls through).
pub fn instr_succs(program: &Program, pc: usize) -> Vec<usize> {
    let len = program.len();
    let fall = |v: &mut Vec<usize>| {
        if pc + 1 < len {
            v.push(pc + 1);
        }
    };
    let mut out = Vec::with_capacity(2);
    match program.fetch(pc) {
        None | Some(Instr::Halt) => {}
        Some(Instr::Jmp(t)) => out.push(t as usize),
        Some(
            Instr::Brz(_, t) | Instr::Brnz(_, t) | Instr::Brlt(_, _, t) | Instr::Brge(_, _, t),
        ) => {
            out.push(t as usize);
            fall(&mut out);
        }
        Some(_) => fall(&mut out),
    }
    out.sort_unstable();
    out.dedup();
    out
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Cfg {
        let len = program.len();
        let succs: Vec<Vec<usize>> = (0..len).map(|pc| instr_succs(program, pc)).collect();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); len];
        for (pc, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(pc);
            }
        }

        // Leaders: entry, branch targets, fallthroughs of control transfers.
        let mut leader = vec![false; len];
        if len > 0 {
            leader[0] = true;
        }
        for (pc, i) in program.iter() {
            match i {
                Instr::Jmp(t) => {
                    leader[t as usize] = true;
                    if pc + 1 < len {
                        leader[pc + 1] = true;
                    }
                }
                Instr::Brz(_, t)
                | Instr::Brnz(_, t)
                | Instr::Brlt(_, _, t)
                | Instr::Brge(_, _, t) => {
                    leader[t as usize] = true;
                    if pc + 1 < len {
                        leader[pc + 1] = true;
                    }
                }
                Instr::Halt if pc + 1 < len => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; len];
        let mut start = 0usize;
        for (pc, &lead) in leader.iter().enumerate() {
            if pc > start && lead {
                blocks.push(BasicBlock {
                    start,
                    end: pc,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = pc;
            }
        }
        if len > 0 {
            blocks.push(BasicBlock {
                start,
                end: len,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }
        for (id, b) in blocks.iter().enumerate() {
            for pc in b.pcs() {
                block_of[pc] = id;
            }
        }
        // Block edges from the terminator's instruction edges.
        let edges: Vec<(usize, usize)> = blocks
            .iter()
            .enumerate()
            .flat_map(|(id, b)| {
                succs[b.end - 1]
                    .iter()
                    .map(|&s| (id, block_of[s]))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (from, to) in edges {
            if !blocks[from].succs.contains(&to) {
                blocks[from].succs.push(to);
            }
            if !blocks[to].preds.contains(&from) {
                blocks[to].preds.push(from);
            }
        }

        Cfg {
            len,
            blocks,
            block_of,
            succs,
            preds,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The basic blocks, in program order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Block id containing `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Successor pcs of `pc`.
    pub fn succs(&self, pc: usize) -> &[usize] {
        &self.succs[pc]
    }

    /// Predecessor pcs of `pc`.
    pub fn preds(&self, pc: usize) -> &[usize] {
        &self.preds[pc]
    }

    /// Pcs reachable from `entry` (inclusive), stopping traversal *at*
    /// (not including successors of) any pc for which `stop` returns true.
    pub fn reachable_until(&self, entry: usize, stop: impl Fn(usize) -> bool) -> Vec<usize> {
        let mut seen = vec![false; self.len];
        let mut stack = vec![entry];
        while let Some(pc) = stack.pop() {
            if pc >= self.len || seen[pc] {
                continue;
            }
            seen[pc] = true;
            if stop(pc) {
                continue;
            }
            stack.extend_from_slice(&self.succs[pc]);
        }
        seen.iter()
            .enumerate()
            .filter_map(|(pc, &s)| s.then_some(pc))
            .collect()
    }

    /// Block ids in reverse post-order from the entry block.
    pub fn rpo(&self) -> Vec<usize> {
        if self.blocks.is_empty() {
            return Vec::new();
        }
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit phase marker.
        let mut stack = vec![(0usize, false)];
        while let Some((b, expanded)) = stack.pop() {
            if expanded {
                post.push(b);
                continue;
            }
            if visited[b] {
                continue;
            }
            visited[b] = true;
            stack.push((b, true));
            for &s in &self.blocks[b].succs {
                if !visited[s] {
                    stack.push((s, false));
                }
            }
        }
        post.reverse();
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::{ProgramBuilder, Reg};

    fn loop_program() -> Program {
        // 0: ldi r0,0   1: ldi r1,3
        // 2: addi r0,r0,1   3: brlt r0,r1,@2
        // 4: halt
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 0).ldi(Reg(1), 3);
        let top = b.label();
        b.place(top);
        b.addi(Reg(0), Reg(0), 1);
        b.brlt(Reg(0), Reg(1), top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn blocks_split_at_branch_targets() {
        let p = loop_program();
        let cfg = Cfg::build(&p);
        let starts: Vec<usize> = cfg.blocks().iter().map(|b| b.start).collect();
        assert_eq!(starts, vec![0, 2, 4]);
        assert_eq!(cfg.block_of(3), 1);
        // Loop block succeeds to itself and to the exit.
        assert_eq!(cfg.blocks()[1].succs.len(), 2);
        assert!(cfg.blocks()[1].succs.contains(&1));
    }

    #[test]
    fn instr_edges_cover_branch_and_fallthrough() {
        let p = loop_program();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.succs(3), &[2, 4]);
        assert_eq!(cfg.succs(4), &[] as &[usize]);
        assert_eq!(cfg.preds(2), &[1, 3]);
    }

    #[test]
    fn rpo_starts_at_entry() {
        let p = loop_program();
        let cfg = Cfg::build(&p);
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 3);
    }

    #[test]
    fn reachable_until_stops_at_marker() {
        let mut b = ProgramBuilder::new();
        b.mark_resume(0).ldi(Reg(0), 1).frame_done().halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let r = cfg.reachable_until(1, |pc| matches!(p.fetch(pc), Some(Instr::FrameDone)));
        // frame_done itself is reached but not crossed; halt is excluded.
        assert_eq!(r, vec![1, 2]);
    }
}
