//! Backward register-liveness dataflow.
//!
//! A register is *live* at a program point if some path from that point
//! reads it before writing it. The result drives the backup-liveness pass:
//! dead registers need not be persisted at a power emergency.

use crate::cfg::Cfg;
use crate::dataflow::{solve, Analysis, Direction};
use nvp_isa::{Instr, Program};

/// Per-pc liveness result (register bitmasks).
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live immediately before each pc executes.
    pub live_in: Vec<u16>,
    /// Registers live immediately after each pc executes.
    pub live_out: Vec<u16>,
}

impl Liveness {
    /// Registers live just before `pc` executes (0 for unreachable code).
    pub fn live_at(&self, pc: usize) -> u16 {
        self.live_in.get(pc).copied().unwrap_or(0)
    }
}

struct LivenessAnalysis;

impl Analysis for LivenessAnalysis {
    type State = u16;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> u16 {
        0
    }

    fn transfer(&self, _pc: usize, instr: Instr, after: &u16) -> u16 {
        let mut s = *after;
        if let Some(d) = instr.dst() {
            s &= !(1 << d.0);
        }
        for r in instr.srcs() {
            s |= 1 << r.0;
        }
        s
    }

    fn join(&self, into: &mut u16, other: &u16) {
        *into |= other;
    }
}

/// Computes register liveness for `program`.
pub fn liveness(program: &Program, cfg: &Cfg) -> Liveness {
    let sol = solve(program, cfg, &LivenessAnalysis);
    Liveness {
        live_in: sol.before.iter().map(|s| s.unwrap_or(0)).collect(),
        live_out: sol.after.iter().map(|s| s.unwrap_or(0)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::{ProgramBuilder, Reg};

    #[test]
    fn straight_line_kill_and_gen() {
        // 0: ldi r0,1   1: mov r1,r0   2: st [4],r1   3: halt
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 1).mov(Reg(1), Reg(0)).st(4, Reg(1)).halt();
        let p = b.build().unwrap();
        let l = liveness(&p, &Cfg::build(&p));
        assert_eq!(l.live_at(0), 0); // r0 defined here, nothing live before
        assert_eq!(l.live_at(1), 1 << 0);
        assert_eq!(l.live_at(2), 1 << 1);
        assert_eq!(l.live_at(3), 0);
    }

    #[test]
    fn loop_keeps_counter_live_across_back_edge() {
        // 0: ldi r0,0  1: ldi r1,3  2: addi r0,r0,1  3: brlt r0,r1,@2  4: halt
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 0).ldi(Reg(1), 3);
        let top = b.label();
        b.place(top);
        b.addi(Reg(0), Reg(0), 1);
        b.brlt(Reg(0), Reg(1), top);
        b.halt();
        let p = b.build().unwrap();
        let l = liveness(&p, &Cfg::build(&p));
        // Both counter and bound live around the loop.
        assert_eq!(l.live_at(2), 0b11);
        assert_eq!(l.live_at(3), 0b11);
        // The bound is not yet live before its definition.
        assert_eq!(l.live_at(1), 0b01);
    }

    #[test]
    fn dead_write_not_live() {
        // r2 written, never read.
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(2), 7).ldi(Reg(0), 1).st(3, Reg(0)).halt();
        let p = b.build().unwrap();
        let l = liveness(&p, &Cfg::build(&p));
        assert_eq!(l.live_at(0) & (1 << 2), 0);
        assert_eq!(l.live_out[0] & (1 << 2), 0);
    }
}
