//! Static instruction pricing and platform energy budget for WCEC.
//!
//! The WCEC certifier ([`crate::wcec`]) needs two ingredients the dynamic
//! simulator already owns:
//!
//! * **per-instruction energy** — [`CostModel`] tabulates
//!   [`EnergyModel::instr_energy`] per [`InstrClass`] at a fixed governor
//!   bitwidth, so the static bound prices every instruction with *exactly*
//!   the arithmetic `nvp-sim` charges at runtime (the model lives in
//!   `nvp-isa` for precisely this reason);
//! * **how much of the capacitor a region may spend** — [`EnergyBudget`]
//!   mirrors the simulator's platform defaults (capacitor size, backup
//!   policy, reserve safety factor) and derives the *usable* energy per
//!   charge cycle: what is left for compute after the reserved backup and
//!   the restore that bracket it.
//!
//! The usable figure is deliberately the **supremum** over reachable
//! capacitor states: it assumes the capacitor recharges to *full* capacity
//! (not merely the start threshold) before the region runs, because ambient
//! income can top the capacitor up mid-region. A region whose WCEC exceeds
//! even this most generous budget at every governor setting can never
//! complete — that is the provable-livelock condition behind lint
//! `NVP-E006` (see [`crate::wcec_lint`]).

use nvp_isa::{ApproxConfig, EnergyModel, Instr, InstrClass};
use nvp_nvm::RetentionPolicy;
use serde::{Deserialize, Serialize};

/// Per-class static instruction energies (nJ) at one governor bitwidth.
///
/// Single-lane pricing: the static analysis bounds the lane-0 live
/// computation. Incidental SIMD lanes only ever *add* energy at runtime,
/// but they also only exist when the runtime chose to merge parked frames —
/// the certificate bounds the program as declared, and the simulator's
/// block-budget mode independently refuses to arm under incidental
/// execution (see `nvp-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Governor bitwidth this table was built for (1..=8).
    pub bits: u8,
    /// Energy in nJ per instruction, indexed by [`InstrClass::index`].
    pub class_nj: [f64; 6],
}

impl CostModel {
    /// Tabulates `model` at `bits` (single lane, ALU and memory both at
    /// `bits`, matching `ApproxConfig::fixed`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=8`.
    pub fn new(model: &EnergyModel, bits: u8) -> CostModel {
        let cfg = ApproxConfig::fixed(bits);
        let mut class_nj = [0.0; 6];
        for class in InstrClass::ALL {
            class_nj[class.index()] = model.instr_energy(class, &cfg).as_nj();
        }
        CostModel { bits, class_nj }
    }

    /// Tabulates the default platform model at `bits`.
    pub fn for_bits(bits: u8) -> CostModel {
        CostModel::new(&EnergyModel::default(), bits)
    }

    /// Static energy of one instruction, in nJ.
    pub fn instr_nj(&self, instr: Instr) -> f64 {
        self.class_nj[instr.class().index()]
    }

    /// Static energy of one instruction class, in nJ.
    pub fn class_cost_nj(&self, class: InstrClass) -> f64 {
        self.class_nj[class.index()]
    }
}

/// Platform energy envelope the WCEC certificate is judged against.
///
/// Mirrors `nvp-sim`'s `SystemConfig::default()` platform; a drift guard in
/// the simulator's test suite keeps the two in sync.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBudget {
    /// Storage capacitor capacity, in nJ.
    pub capacity_nj: f64,
    /// Retention policy backups are written under.
    pub backup_policy: RetentionPolicy,
    /// Safety multiplier on the reserved backup energy.
    pub reserve_safety: f64,
    /// The calibrated energy model.
    pub model: EnergyModel,
}

impl Default for EnergyBudget {
    fn default() -> Self {
        EnergyBudget::default_platform()
    }
}

impl EnergyBudget {
    /// The default platform: a 3.5 µJ capacitor, full-retention backups,
    /// a 1.1× backup reserve, and the calibrated [`EnergyModel`].
    pub fn default_platform() -> EnergyBudget {
        EnergyBudget {
            capacity_nj: 3_500.0,
            backup_policy: RetentionPolicy::FullRetention,
            reserve_safety: 1.1,
            model: EnergyModel::default(),
        }
    }

    /// Usable compute energy per charge cycle at governor bitwidth `bits`,
    /// in nJ: full capacity minus the reserved worst-case backup and the
    /// restore that (re)entered the region.
    ///
    /// This is the supremum over reachable capacitor states — the most
    /// generous budget any single charge cycle can offer. A bounded region
    /// WCEC above this figure therefore proves the region can never
    /// complete within one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=8`.
    pub fn usable_nj(&self, bits: u8) -> f64 {
        let reserve =
            self.model.backup_energy(self.backup_policy, bits).as_nj() * self.reserve_safety;
        let restore = self.model.restore_energy().as_nj();
        self.capacity_nj - reserve - restore
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_table_matches_direct_model_calls() {
        let model = EnergyModel::default();
        for bits in 1..=8u8 {
            let cm = CostModel::new(&model, bits);
            let cfg = ApproxConfig::fixed(bits);
            for class in InstrClass::ALL {
                let direct = model.instr_energy(class, &cfg).as_nj();
                // Bit-identical, not merely close: the simulator must be
                // able to drain exactly these figures.
                assert_eq!(cm.class_cost_nj(class), direct, "{class:?} at {bits}b");
            }
        }
    }

    #[test]
    fn narrower_bits_never_cost_more() {
        for class in InstrClass::ALL {
            let mut prev = f64::INFINITY;
            for bits in (1..=8u8).rev() {
                let c = CostModel::for_bits(bits).class_cost_nj(class);
                assert!(c <= prev, "{class:?}: {bits}b costs {c} > {prev}");
                prev = c;
            }
        }
    }

    #[test]
    fn usable_energy_grows_as_bits_shrink() {
        let b = EnergyBudget::default_platform();
        let mut prev = 0.0;
        for bits in (1..=8u8).rev() {
            let u = b.usable_nj(bits);
            assert!(u >= prev, "usable at {bits}b regressed: {u} < {prev}");
            prev = u;
        }
        // Sanity: the default platform leaves real compute headroom.
        assert!(b.usable_nj(8) > 1_000.0, "usable(8) = {}", b.usable_nj(8));
        assert!(b.usable_nj(8) < b.capacity_nj);
    }

    #[test]
    fn instr_nj_routes_through_the_class_table() {
        use nvp_isa::Reg;
        let cm = CostModel::for_bits(4);
        let mul = Instr::Mul(Reg(0), Reg(1), Reg(2));
        assert_eq!(cm.instr_nj(mul), cm.class_cost_nj(InstrClass::Mul));
    }
}
