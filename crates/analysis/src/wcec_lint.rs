//! Forward-progress lints over WCEC certificates.
//!
//! [`WcecPass`] evaluates the [`crate::wcec`] certificate across the
//! kernel's declared governor range and reports:
//!
//! * **`NVP-E006` (error)** — a checkpoint-to-checkpoint region whose
//!   *proven minimum* traversal cost ([`crate::wcec::Region::min_nj`])
//!   exceeds the usable capacitor energy at **every** governor setting.
//!   No single charge cycle — even one that recharges to full capacity —
//!   can carry the region from its checkpoint to the next, so the program
//!   backs up, restores, and re-executes the same prefix forever:
//!   provable livelock. The comparison deliberately uses the lower bound,
//!   not the WCEC: the WCEC over-approximates (joined intervals can
//!   inflate inner-loop trip counts by orders of magnitude on real
//!   kernels), and an inflated ceiling exceeding the budget proves
//!   nothing. A floor exceeding the budget does.
//! * **`NVP-W004` (warning)** — a loop whose trip count could not be
//!   bounded at some setting, plus irreducible control flow. Every
//!   `Unbounded` entry in the certificate traces back to one of these.
//! * **`NVP-I002` (info)** — the headroom summary at the declared floor:
//!   worst bounded region vs. the usable budget.
//!
//! The pass is not part of [`crate::default_passes`]; `nvp-lint --energy`
//! runs it explicitly (energy certification is a deliberate opt-in, like
//! the bitwidth mode).

use crate::cost_model::{CostModel, EnergyBudget};
use crate::diag::{Diagnostic, LintCode};
use crate::wcec::{wcec_report, Wcec, WcecReport};
use crate::{Pass, PassContext};

/// The WCEC certification pass. See the module docs for the lints.
#[derive(Debug, Clone, Default)]
pub struct WcecPass {
    /// The platform envelope certificates are judged against.
    pub budget: EnergyBudget,
}

impl WcecPass {
    /// A pass judging against `budget`.
    pub fn new(budget: EnergyBudget) -> WcecPass {
        WcecPass { budget }
    }

    /// The governor settings to evaluate for `cx`: the kernel's declared
    /// range, or the full 1..=8 when nothing is declared.
    fn bit_range(cx: &PassContext<'_>) -> (u8, u8) {
        match cx.config.declared {
            Some(d) => (d.minbits, d.maxbits),
            None => (1, 8),
        }
    }

    /// Certificates for every setting in the declared range, lowest first.
    pub fn certificates(&self, cx: &PassContext<'_>) -> Vec<WcecReport> {
        let (lo, hi) = Self::bit_range(cx);
        (lo..=hi)
            .map(|bits| {
                wcec_report(
                    cx.program,
                    cx.cfg,
                    &CostModel::new(&self.budget.model, bits),
                )
            })
            .collect()
    }
}

impl Pass for WcecPass {
    fn name(&self) -> &'static str {
        "wcec"
    }

    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
        let reports = self.certificates(cx);
        let Some(floor) = reports.first() else {
            return Vec::new();
        };
        let mut diags = Vec::new();

        // W004: a loop unbounded at any evaluated setting (reported once,
        // at the setting where it first fails), plus irreducible flow.
        let mut warned_heads: Vec<usize> = Vec::new();
        for r in &reports {
            if r.loops.irreducible {
                diags.push(Diagnostic::program_level(
                    LintCode::UnboundedLoop,
                    format!(
                        "irreducible control flow at {} bits: cycles exist that no \
                         natural-loop bound covers, so the WCEC certificate is unbounded",
                        r.bits
                    ),
                ));
                break;
            }
        }
        for r in &reports {
            for l in &r.loops.loops {
                let head_pc = l.head_pc(cx.cfg);
                if !l.bound.is_bounded() && !warned_heads.contains(&head_pc) {
                    warned_heads.push(head_pc);
                    diags.push(
                        Diagnostic::at(
                            LintCode::UnboundedLoop,
                            head_pc,
                            format!(
                                "loop trip count unknown at {} bits: no register matches a \
                                 bounded monotone counter pattern",
                                r.bits
                            ),
                        )
                        .with_context(cx.program),
                    );
                }
            }
        }

        // E006: judged on the *proven minimum* traversal cost — the WCEC
        // over-approximates, so only the floor can prove livelock. Judge
        // by region index so the verdict aggregates across settings.
        for (ri, region) in floor.regions.iter().enumerate() {
            let mut min_excess: Option<f64> = None; // smallest overshoot seen
            let mut livelock = true;
            for r in &reports {
                let usable = self.budget.usable_nj(r.bits);
                let need = r.regions[ri].min_nj;
                if need > usable {
                    let excess = need - usable;
                    min_excess = Some(min_excess.map_or(excess, |e: f64| e.min(excess)));
                } else {
                    // The cheapest traversal fits (or no floor was proven)
                    // at this setting: no livelock proof.
                    livelock = false;
                    break;
                }
            }
            if livelock {
                let (lo, hi) = Self::bit_range(cx);
                diags.push(
                    Diagnostic::at(
                        LintCode::RegionLivelock,
                        region.start_pc,
                        format!(
                            "region {} (pc {}) can never complete: even its cheapest \
                             traversal exceeds the usable capacitor energy at every \
                             governor setting {}..={} bits (closest miss: {:.1} nJ over)",
                            region.kind,
                            region.start_pc,
                            lo,
                            hi,
                            min_excess.unwrap_or(0.0)
                        ),
                    )
                    .with_context(cx.program),
                );
            }
        }

        // I002: headroom at the declared floor.
        if let Some(worst) = floor.worst_region() {
            let usable = self.budget.usable_nj(floor.bits);
            let msg = match worst.wcec {
                Wcec::Bounded(nj) => format!(
                    "WCEC headroom at {} bits: worst region {} (pc {}) needs ≤{:.1} nJ of \
                     {:.1} nJ usable ({:.0}% of budget); program {}",
                    floor.bits,
                    worst.kind,
                    worst.start_pc,
                    nj,
                    usable,
                    nj / usable * 100.0,
                    floor.program,
                ),
                Wcec::Unbounded => format!(
                    "WCEC headroom at {} bits: region {} (pc {}) is unbounded — see NVP-W004",
                    floor.bits, worst.kind, worst.start_pc,
                ),
            };
            diags.push(Diagnostic::program_level(LintCode::WcecHeadroom, msg));
        }

        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_with, AnalysisConfig};
    use nvp_isa::{Program, ProgramBuilder, Reg};

    fn run_pass(p: &Program) -> Vec<Diagnostic> {
        let report = analyze_with(
            p,
            &AnalysisConfig::default(),
            &[Box::new(WcecPass::default()) as Box<dyn Pass>],
        );
        report.diagnostics
    }

    fn codes(diags: &[Diagnostic]) -> Vec<LintCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn small_kernel_gets_headroom_info_only() {
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ldi(n, 10);
        let top = b.label();
        b.place(top);
        b.addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let diags = run_pass(&b.build().unwrap());
        assert_eq!(codes(&diags), vec![LintCode::WcecHeadroom]);
        assert!(diags[0].message.contains("headroom"), "{}", diags[0]);
    }

    /// A synthetic livelock kernel: one checkpointless region that must
    /// execute ~200k multiplies — orders of magnitude beyond what a full
    /// 3.5 µJ capacitor can deliver at any bitwidth.
    fn livelock_program() -> Program {
        let mut b = ProgramBuilder::new();
        let (i, j, ni, nj) = (Reg(0), Reg(1), Reg(2), Reg(3));
        b.ldi(ni, 1000).ldi(nj, 200).ldi(i, 0);
        let outer = b.label();
        b.place(outer);
        b.ldi(j, 0);
        let inner = b.label();
        b.place(inner);
        b.mul(Reg(4), Reg(4), Reg(4))
            .addi(j, j, 1)
            .brlt(j, nj, inner);
        b.addi(i, i, 1).brlt(i, ni, outer);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn oversized_region_triggers_provable_livelock() {
        let diags = run_pass(&livelock_program());
        assert!(
            codes(&diags).contains(&LintCode::RegionLivelock),
            "expected E006 in {diags:?}"
        );
        let e = diags
            .iter()
            .find(|d| d.code == LintCode::RegionLivelock)
            .unwrap();
        assert!(e.message.contains("every governor setting"), "{e}");
        // No W004: the loops are bounded — that is what makes it provable.
        assert!(!codes(&diags).contains(&LintCode::UnboundedLoop));
    }

    #[test]
    fn splitting_the_livelock_with_checkpoints_clears_e006() {
        // Same work, but a frame_done inside the outer loop: each region
        // is now one inner sweep, well within budget.
        let mut b = ProgramBuilder::new();
        let (i, j, ni, nj) = (Reg(0), Reg(1), Reg(2), Reg(3));
        b.ldi(ni, 1000).ldi(nj, 200).ldi(i, 0);
        b.mark_resume(0);
        let outer = b.label();
        b.place(outer);
        b.ldi(j, 0);
        let inner = b.label();
        b.place(inner);
        b.mul(Reg(4), Reg(4), Reg(4))
            .addi(j, j, 1)
            .brlt(j, nj, inner);
        b.frame_done();
        b.addi(i, i, 1).brlt(i, ni, outer);
        b.halt();
        let diags = run_pass(&b.build().unwrap());
        assert!(
            !codes(&diags).contains(&LintCode::RegionLivelock),
            "checkpointed program still flagged: {diags:?}"
        );
    }

    #[test]
    fn unbounded_loop_warns_but_never_errors() {
        // Data-dependent trip count: W004, and *no* E006 even though the
        // loop could run forever — an unknown bound proves nothing.
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(0), Reg(1));
        b.ldi(i, 0).ld(n, 3);
        let top = b.label();
        b.place(top);
        b.mul(Reg(2), Reg(2), Reg(2)).addi(i, i, 1).brlt(i, n, top);
        b.halt();
        let diags = run_pass(&b.build().unwrap());
        let cs = codes(&diags);
        assert!(cs.contains(&LintCode::UnboundedLoop), "{diags:?}");
        assert!(!cs.contains(&LintCode::RegionLivelock), "{diags:?}");
    }

    #[test]
    fn certificates_cover_the_declared_range() {
        let mut b = ProgramBuilder::new();
        b.ldi(Reg(0), 1).halt();
        let p = b.build().unwrap();
        let cfg = crate::Cfg::build(&p);
        let config = AnalysisConfig {
            declared: Some(crate::DeclaredBits::new(3, 6)),
            ..Default::default()
        };
        let cx = PassContext {
            program: &p,
            cfg: &cfg,
            config: &config,
        };
        let certs = WcecPass::default().certificates(&cx);
        assert_eq!(
            certs.iter().map(|c| c.bits).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
    }
}
