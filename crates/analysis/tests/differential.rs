//! Differential soundness tests for the value-range / error-bound
//! abstract interpretation: random programs from the lint-clean safe
//! vocabulary are executed concretely, in lockstep, at full precision and
//! at a reduced bitwidth, and every abstract claim is checked against the
//! pair of runs at every retired instruction:
//!
//! * both runs stay on the same control path (branches only consume
//!   precise registers, the condition the bitwidth lint enforces);
//! * every register value of **either** run lies in the solved
//!   before-interval at the current pc;
//! * the deviation between the runs never exceeds [`dev_bound`], for
//!   registers and for the two memory summaries;
//! * every concretely reached pc has an abstract state (reachability is
//!   never under-approximated).
//!
//! At `bits = 8` the approximate run *is* the exact run, so the same
//! harness doubles as a check that the deterministic-op rule (zero input
//! error ⇒ zero output error, wraparound or not) is honoured end to end.

use nvp_analysis::{dev_bound, solve_error_bounds, ApproxState, Cfg};
use nvp_isa::{mem_truncate, ApproxConfig, Program, ProgramBuilder, Reg, Vm, NUM_REGS};
use proptest::collection::vec;
use proptest::prelude::*;

/// Precise vocabulary registers (`r0`/`r1` are reserved for the loop).
const PRECISE: [Reg; 2] = [Reg(2), Reg(3)];
/// Approximation-candidate vocabulary registers.
const AC: [Reg; 4] = [Reg(12), Reg(13), Reg(14), Reg(15)];
/// Memory image size of the generated programs.
const MEM_WORDS: usize = 256;

/// Builds a single counted loop over ops drawn from the safe vocabulary:
/// precise control registers, AC data registers, loads from `[100..150)`
/// and stores to `[150..200)` inside the region `[100..200)`.
fn build(raw: &[u32], trips: u32) -> Program {
    let mut b = ProgramBuilder::new();
    for r in AC {
        b.mark_ac(r);
    }
    b.approx_region(100, 200);
    b.mark_resume(0);
    let (cnt, lim) = (Reg(0), Reg(1));
    b.ldi(cnt, 0).ldi(lim, trips as i32);
    let top = b.label();
    b.place(top);
    for &word in raw {
        let p = PRECISE[(word >> 8) as usize % 2];
        let a = AC[(word >> 16) as usize % 4];
        let a2 = AC[(word >> 24) as usize % 4];
        match word % 8 {
            0 => b.ldi(p, (word >> 3) as i32 % 256),
            1 => b.addi(p, p, (word >> 5) as i32 % 16),
            2 => b.add(a, a, a2),
            3 => b.ld(a, 100 + (word >> 4) % 50),
            4 => b.st(150 + (word >> 4) % 50, a),
            5 => b.muli(a, a, (word >> 6) as i32 % 8),
            6 => b.sub(a, a, a2),
            _ => b.abs(a, a),
        };
    }
    b.addi(cnt, cnt, 1);
    b.brlt(cnt, lim, top);
    b.frame_done().halt();
    b.build().expect("generated program must assemble")
}

/// Builds a VM with the region inputs stored pre-truncated to the
/// configuration's memory bitwidth (`run_fixed` frame-load semantics —
/// exactly the deviation the analysis charges the region cell at entry).
fn vm_at(program: &Program, cfg: ApproxConfig, inputs: &[i32], seed: u64) -> Vm {
    let mut vm = Vm::new(program.clone(), MEM_WORDS);
    let mem_bits = cfg.effective_mem_bits(0);
    for (i, &v) in inputs.iter().enumerate() {
        vm.mem_mut().write(100 + i, 0, mem_truncate(v, mem_bits), 8);
    }
    vm.set_approx(cfg);
    vm.seed_noise(seed);
    vm
}

/// Checks one abstract register claim against the concrete pair.
fn check_reg(st: &ApproxState, r: usize, v8: i32, vb: i32, pc: usize, program: &Program) {
    let av = &st.regs[r];
    assert!(
        av.iv.contains(v8) && av.iv.contains(vb),
        "pc {pc} r{r}: {v8}/{vb} outside [{}, {}]\n{}",
        av.iv.lo,
        av.iv.hi,
        program.disassemble()
    );
    let dev = (vb as i64 - v8 as i64).unsigned_abs();
    assert!(
        dev <= dev_bound(av),
        "pc {pc} r{r}: deviation {dev} > bound {} (err {}, diam {})\n{}",
        dev_bound(av),
        av.err,
        av.iv.diam(),
        program.disassemble()
    );
}

/// Worst concrete deviation over an address range.
fn mem_dev(vm8: &Vm, vmb: &Vm, addrs: impl Iterator<Item = usize>) -> u64 {
    addrs
        .map(|a| (vmb.mem().read(a, 0) as i64 - vm8.mem().read(a, 0) as i64).unsigned_abs())
        .max()
        .unwrap_or(0)
}

/// Runs the exact and `bits`-wide executions in lockstep and checks every
/// abstract claim at every step.
fn lockstep(program: &Program, bits: u8, inputs: &[i32], seed: u64) {
    let cfg = Cfg::build(program);
    let sol = solve_error_bounds(program, &cfg, bits);

    let mut vm8 = vm_at(program, ApproxConfig::fixed(8), inputs, seed);
    let mut vmb = vm_at(program, ApproxConfig::fixed(bits), inputs, seed);

    for step in 0.. {
        assert!(step < 100_000, "generated program must halt quickly");
        assert_eq!(
            vm8.pc(),
            vmb.pc(),
            "control paths diverged at step {step}\n{}",
            program.disassemble()
        );
        if vm8.halted() {
            assert!(vmb.halted(), "approx run must halt with the exact run");
            break;
        }
        let pc = vm8.pc();
        let st = sol.before[pc]
            .as_ref()
            .unwrap_or_else(|| panic!("reached pc {pc} has no abstract state"));
        for r in 0..NUM_REGS {
            check_reg(
                st,
                r,
                vm8.reg(Reg(r as u8), 0),
                vmb.reg(Reg(r as u8), 0),
                pc,
                program,
            );
        }
        if st.region.err < u64::MAX {
            let dev = mem_dev(&vm8, &vmb, 100..200);
            assert!(
                dev <= st.region.err,
                "pc {pc}: region deviation {dev} > cell bound {}",
                st.region.err
            );
        }
        if st.outside.err < u64::MAX {
            let dev = mem_dev(&vm8, &vmb, (0..100).chain(200..MEM_WORDS));
            assert!(
                dev <= st.outside.err,
                "pc {pc}: outside deviation {dev} > cell bound {}",
                st.outside.err
            );
        }
        vm8.step().expect("exact run must not fault");
        vmb.step().expect("approx run must not fault");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The solved intervals contain both runs, and the deviation between
    /// the runs respects every register and memory error bound, at every
    /// retired instruction, for every governor floor.
    #[test]
    fn abstract_state_covers_concrete_lockstep_runs(
        raw in vec(any::<u32>(), 1..40),
        trips in 1u32..6,
        inputs in vec(-2000i32..2000, 50..51),
        bits in 1u8..9,
        seed in any::<u64>(),
    ) {
        let p = build(&raw, trips);
        lockstep(&p, bits, &inputs, seed);
    }

    /// At full precision the "approximate" run is bit-identical to the
    /// exact run — registers and all of memory — so every deviation bound
    /// at `bits = 8` must collapse to zero along the whole execution (the
    /// deterministic-op rule: equal inputs give equal outputs even when
    /// the machine wraps).
    #[test]
    fn full_precision_lockstep_never_deviates(
        raw in vec(any::<u32>(), 1..40),
        trips in 1u32..6,
        inputs in vec(any::<i32>(), 50..51),
        seed in any::<u64>(),
    ) {
        let p = build(&raw, trips);
        let mut vm8 = vm_at(&p, ApproxConfig::fixed(8), &inputs, 1);
        let mut vmb = vm_at(&p, ApproxConfig::fixed(8), &inputs, seed);
        lockstep(&p, 8, &inputs, seed);
        for _ in 0..100_000 {
            if vm8.halted() {
                break;
            }
            vm8.step().expect("must not fault");
            vmb.step().expect("must not fault");
        }
        for r in 0..NUM_REGS {
            prop_assert_eq!(vm8.reg(Reg(r as u8), 0), vmb.reg(Reg(r as u8), 0));
        }
        prop_assert_eq!(mem_dev(&vm8, &vmb, 0..MEM_WORDS), 0);
    }
}
