//! Integration tests: the whole kernel suite lints clean, and the new
//! fixpoint passes catch defects the seed's linear scan could not.

use nvp_analysis::{analyze_program, AnalysisConfig, DeclaredBits, LintCode, Severity};
use nvp_isa::{ProgramBuilder, Reg};
use nvp_kernels::KernelId;

/// Every kernel generator must produce a program with zero violations
/// (warnings or errors) under the default pass pipeline — including the
/// bitwidth pass judging each kernel's declared governor range against
/// its statically derived floor.
#[test]
fn every_kernel_lints_clean() {
    for id in KernelId::ALL {
        let (w, h) = id.min_dims();
        let spec = id.spec(w, h);
        let (minbits, maxbits) = id.declared_bits();
        let config = AnalysisConfig {
            sanitized_regs: id.sanitized_regs(),
            mem_words: Some(spec.mem_words),
            declared: Some(DeclaredBits::new(minbits, maxbits)),
        };
        let report = analyze_program(&spec.program, &config);
        let violations: Vec<String> = report
            .at_least(Severity::Warning)
            .map(|d| d.to_string())
            .collect();
        assert!(
            violations.is_empty(),
            "{} has {} violation(s):\n{}",
            id.name(),
            violations.len(),
            violations.join("\n")
        );
        // Every kernel starts with a resume marker, so the backup-liveness
        // pass must report at least one live-set summary.
        assert!(report.count_at_least(Severity::Info) > report.count_at_least(Severity::Warning));
    }
}

/// Regression for the seed's unsoundness across loop back-edges: taint
/// carried through *memory* around a back-edge. The loop body stores an
/// AC register to `[60]`; the next iteration reloads `[60]` and branches
/// on it. The old register-only scan sees `ld r5, [60]` as a fresh
/// precise value (absolute loads have no register sources) and accepts
/// the program; the memory-tracking fixpoint pass flags the branch.
#[test]
fn old_pass_misses_memory_taint_across_back_edge() {
    let mut b = ProgramBuilder::new();
    b.mark_ac(Reg(4)).approx_region(50, 100);
    let (i, n) = (Reg(0), Reg(1));
    b.ldi(i, 0).ldi(n, 4);
    let top = b.label();
    let skip = b.label();
    b.place(top);
    b.ld(Reg(5), 60) // reloads last iteration's tainted store
        .brz(Reg(5), skip); // branch decided by an approximate value
    b.place(skip);
    b.st(60, Reg(4)) // in-region store of AC data taints [60]
        .addi(i, i, 1)
        .brlt(i, n, top);
    b.halt();
    let p = b.build().unwrap();

    // The seed's verifier accepts the program...
    assert!(
        nvp_isa::analysis::verify_ac_isolation(&p).is_empty(),
        "seed pass was expected to (wrongly) accept this loop"
    );
    // ...the fixpoint taint pass does not.
    let report = analyze_program(&p, &AnalysisConfig::default());
    assert!(report.has_errors());
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::BranchOnApprox && d.pc == Some(3)));
}

/// One program seeded with every violation class at once: the pipeline
/// reports each under its own lint code.
#[test]
fn seeded_defects_each_get_their_code() {
    let mut b = ProgramBuilder::new();
    b.mark_ac(Reg(4)).approx_region(50, 100);
    b.mark_loop_var(Reg(9)); // never read: dead resume register
    let end = b.label();
    b.mark_resume(0)
        .ld(Reg(0), 60) // read [60] ...
        .addi(Reg(0), Reg(0), 1)
        .st(60, Reg(0)) // ... then write it: WAR hazard
        .ld_ind(Reg(1), Reg(4), 0) // address from AC register
        .st(200, Reg(4)) // tainted store outside the region
        .brz(Reg(4), end); // branch on AC register
    b.place(end);
    b.frame_done().halt();
    let p = b.build().unwrap();
    let report = analyze_program(&p, &AnalysisConfig::default());
    for code in [
        LintCode::BranchOnApprox,
        LintCode::AddressFromApprox,
        LintCode::StoreOutsideRegion,
        LintCode::WarHazard,
        LintCode::DeadResumeReg,
    ] {
        assert!(
            report.diagnostics.iter().any(|d| d.code == code),
            "expected a {code} diagnostic"
        );
    }
}
