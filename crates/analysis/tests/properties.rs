//! Property tests: randomly generated well-formed programs never trip the
//! analyzer, and randomly injected defects always do.
//!
//! The generator builds programs from a fixed "safe vocabulary" — precise
//! registers (`r0..r3`) for control, AC registers (`r12..r15`) for data,
//! loads from `[100..150)`, stores to `[150..200)` inside the approximable
//! region `[100..200)` — so every clean program respects the isolation and
//! idempotency contracts by construction. Defect injection then plants a
//! single forbidden instruction at a random position and asserts the
//! matching lint code appears.

use nvp_analysis::{analyze_program, AnalysisConfig, LintCode, Severity};
use nvp_isa::{Program, ProgramBuilder, Reg};
use proptest::collection::vec;
use proptest::prelude::*;

const PRECISE: [Reg; 4] = [Reg(0), Reg(1), Reg(2), Reg(3)];
const AC: [Reg; 4] = [Reg(12), Reg(13), Reg(14), Reg(15)];

/// What to plant into an otherwise-clean program.
#[derive(Clone, Copy, PartialEq)]
enum Defect {
    None,
    BranchOnApprox,
    AddressFromApprox,
    War,
}

/// Builds a program from encoded safe ops, optionally planting `defect`
/// at op position `at` (clamped to the op count).
fn build(raw: &[u32], defect: Defect, at: usize) -> Program {
    let mut b = ProgramBuilder::new();
    for r in AC {
        b.mark_ac(r);
    }
    b.approx_region(100, 200);
    let end = b.label();
    b.mark_resume(0);
    let at = at % raw.len().max(1);
    for (i, &word) in raw.iter().enumerate() {
        if i == at {
            match defect {
                Defect::None => {}
                Defect::BranchOnApprox => {
                    b.brz(AC[word as usize % 4], end);
                }
                Defect::AddressFromApprox => {
                    b.ld_ind(PRECISE[1], AC[word as usize % 4], 0);
                }
                Defect::War => {
                    // Read-modify-write of an address (500+) the clean
                    // vocabulary never touches: a guaranteed exposed read
                    // followed by a write inside the roll-forward region.
                    let a = 500 + word % 50;
                    b.ld(PRECISE[1], a)
                        .addi(PRECISE[1], PRECISE[1], 1)
                        .st(a, PRECISE[1]);
                }
            }
        }
        let p = PRECISE[(word >> 8) as usize % 4];
        let a = AC[(word >> 16) as usize % 4];
        let a2 = AC[(word >> 24) as usize % 4];
        match word % 6 {
            0 => b.ldi(p, (word >> 3) as i32 % 256),
            1 => b.addi(p, p, (word >> 5) as i32 % 16),
            2 => b.add(a, a, a2),
            3 => b.ld(a, 100 + (word >> 4) % 50),
            4 => b.st(150 + (word >> 4) % 50, a),
            _ => b.muli(a, a, (word >> 6) as i32 % 8),
        };
    }
    b.place(end);
    b.frame_done().halt();
    b.build().expect("generated program must assemble")
}

fn codes(p: &Program) -> Vec<LintCode> {
    analyze_program(p, &AnalysisConfig::default())
        .at_least(Severity::Warning)
        .map(|d| d.code)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Programs built from the safe vocabulary are never flagged.
    #[test]
    fn clean_programs_are_never_flagged(raw in vec(any::<u32>(), 1..48), at in 0usize..48) {
        let p = build(&raw, Defect::None, at);
        let v = codes(&p);
        prop_assert!(v.is_empty(), "clean program flagged: {v:?}\n{}", p.disassemble());
    }

    /// An injected branch on an AC register is always caught.
    #[test]
    fn injected_branch_on_approx_always_caught(raw in vec(any::<u32>(), 1..48), at in 0usize..48) {
        let p = build(&raw, Defect::BranchOnApprox, at);
        prop_assert!(codes(&p).contains(&LintCode::BranchOnApprox));
    }

    /// An injected AC-based effective address is always caught.
    #[test]
    fn injected_address_from_approx_always_caught(raw in vec(any::<u32>(), 1..48), at in 0usize..48) {
        let p = build(&raw, Defect::AddressFromApprox, at);
        prop_assert!(codes(&p).contains(&LintCode::AddressFromApprox));
    }

    /// An injected read-modify-write in the roll-forward region is always
    /// caught.
    #[test]
    fn injected_war_hazard_always_caught(raw in vec(any::<u32>(), 1..48), at in 0usize..48) {
        let p = build(&raw, Defect::War, at);
        prop_assert!(codes(&p).contains(&LintCode::WarHazard));
    }
}
