//! Empirical soundness of the static dirty-set analysis: walk real VM
//! executions and check that every register and memory word actually
//! written between two checkpoint crossings is contained in the static
//! dirty set of the region entered at the last crossing.
//!
//! This is the contract `BackupScope::LiveDirty` leans on — a backup that
//! skips a register or word outside the mask is only correct if no
//! execution of the region can have written it. The harness checks the
//! declared placement, the synthesized placement (exercising
//! [`RegionKind::Synthetic`] regions and the explicit-checkpoint path),
//! and every shipped kernel, across governor bitwidths.

use nvp_analysis::{
    declared_checkpoints, dirty_report_at, synthesize, Cfg, CkptOptions, DirtyReport, RegionKind,
};
use nvp_isa::{Instr, Program, ProgramBuilder, Reg, StepEvent, Vm};
use nvp_kernels::KernelId;
use proptest::collection::vec;
use proptest::prelude::*;

const MEM_WORDS: usize = 256;
const STEP_CAP: u64 = 500_000;
const PRECISE: [Reg; 4] = [Reg(0), Reg(1), Reg(2), Reg(3)];
const AC: [Reg; 4] = [Reg(12), Reg(13), Reg(14), Reg(15)];

/// Builds a multi-region program from encoded random ops: a straight-line
/// prefix with an optional mid-program resume point, a bounded loop whose
/// body both accumulates in AC registers and stores through a
/// loop-carried index, a frame commit, and a short post-frame tail (so
/// every [`RegionKind`] shows up). The vocabulary includes absolute
/// stores, indirect stores off a constant base (interval-boundable) and
/// indirect stores off a loaded base (statically unboundable — the region
/// must degrade to a whole-memory bound, never drop the write).
fn build(raw: &[u32], trip: u32, ckpt_at: usize) -> Program {
    let mut b = ProgramBuilder::new();
    for r in AC {
        b.mark_ac(r);
    }
    b.approx_region(100, 200);
    b.mark_resume(0);
    let ckpt_at = ckpt_at % raw.len().max(1);
    let op = |b: &mut ProgramBuilder, word: u32, precise: &[Reg]| {
        let p = precise[(word >> 8) as usize % precise.len()];
        let a = AC[(word >> 16) as usize % 4];
        let a2 = AC[(word >> 24) as usize % 4];
        match word % 8 {
            0 => b.ldi(p, (word >> 3) as i32 % 256),
            1 => b.addi(p, p, (word >> 5) as i32 % 16),
            2 => b.add(a, a, a2),
            3 => b.ld(a, 100 + (word >> 4) % 50),
            4 => b.st(150 + (word >> 4) % 50, a),
            5 => {
                // Indirect store off a constant base: the interval domain
                // can bound the address set exactly.
                b.ldi(p, 150 + (word >> 4) as i32 % 40);
                b.st_ind(p, (word >> 10) as i32 % 10, a)
            }
            6 => {
                // Indirect store off a *loaded* base: statically
                // unboundable, so the region's memory bound must widen to
                // whole-memory rather than miss the write. (Initial data
                // memory is zeroed, so the dynamic address stays in
                // range.)
                b.ld(p, 100 + (word >> 4) % 50);
                b.st_ind(p, 150 + (word >> 10) as i32 % 40, a)
            }
            _ => b.muli(a, a, (word >> 6) as i32 % 8),
        };
    };
    for (i, &word) in raw.iter().enumerate() {
        if i == ckpt_at && i != 0 {
            b.mark_resume(1);
        }
        op(&mut b, word, &PRECISE);
    }
    // Bounded loop: mem[200 + c] = accumulator, for c in 0..trip.
    let c = PRECISE[0];
    let n = PRECISE[1];
    let idx = PRECISE[2];
    b.ldi(c, 0).ldi(n, trip as i32);
    let head = b.label();
    b.place(head);
    // The body op only gets r3: clobbering the counter, bound, or index
    // register would break termination or addressing.
    op(&mut b, raw[raw.len() / 2], &[PRECISE[3]]);
    b.addi(idx, c, 200)
        .st_ind(idx, 0, AC[0])
        .addi(c, c, 1)
        .brlt(c, n, head);
    b.frame_done();
    // Post-frame tail: writes landing in the PostFrame region.
    b.ldi(c, 7).st(249, c);
    b.halt();
    b.build().expect("generated program must assemble")
}

/// Walks `program` to completion, tracking the most recently crossed
/// checkpoint, and checks every dynamic write against that region's
/// static dirty set. Errors carry the offending pc for the proptest
/// failure message.
fn check_sound(
    program: &Program,
    report: &DirtyReport,
    checkpoints: &[(usize, RegionKind)],
) -> Result<(), String> {
    let mut vm = Vm::new(program.clone(), MEM_WORDS);
    let mut current = 0usize;
    for _ in 0..STEP_CAP {
        let pc = vm.pc();
        if checkpoints.iter().any(|&(cp, _)| cp == pc) {
            current = pc;
        }
        let Some(instr) = vm.peek() else {
            return Ok(());
        };
        let region = report
            .regions
            .iter()
            .find(|r| r.start_pc == current)
            .ok_or_else(|| format!("no region starting at pc {current}"))?;
        if let Some(d) = instr.dst() {
            if region.dirty_regs & (1u16 << d.0) == 0 {
                return Err(format!(
                    "pc {pc}: r{} written but not in dirty regs {:#06x} of region @{current}",
                    d.0, region.dirty_regs
                ));
            }
        }
        let store_addr = match instr {
            Instr::St(a, _) => Some(i64::from(a)),
            Instr::StInd(base, off, _) => Some(i64::from(vm.reg(base, 0)) + i64::from(off)),
            _ => None,
        };
        if let Some(a) = store_addr {
            let addr = u32::try_from(a).map_err(|_| format!("pc {pc}: store addr {a} negative"))?;
            if !region.mem.contains(addr) {
                return Err(format!(
                    "pc {pc}: store to {addr} outside dirty memory of region @{current}"
                ));
            }
        }
        match vm.step() {
            Ok(StepEvent::Halted) => return Ok(()),
            Ok(_) => {}
            Err(e) => return Err(format!("pc {pc}: vm fault {e:?}")),
        }
    }
    Err(format!("did not halt within {STEP_CAP} steps"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Declared placement: every dynamic write lands inside the static
    /// dirty set of the region entered at the last checkpoint crossing.
    #[test]
    fn declared_regions_contain_all_dynamic_writes(
        raw in vec(any::<u32>(), 1..32),
        trip in 1u32..20,
        ckpt_at in 0usize..32,
        bits in 1u8..=8,
    ) {
        let p = build(&raw, trip, ckpt_at);
        let cfg = Cfg::build(&p);
        let ckpts = declared_checkpoints(&p);
        let report = dirty_report_at(&p, &cfg, bits, MEM_WORDS, &ckpts);
        let r = check_sound(&p, &report, &ckpts);
        prop_assert!(r.is_ok(), "{}\n{}", r.unwrap_err(), p.disassemble());
    }

    /// Synthesized placement: the same containment holds for the
    /// checkpoint set the placement optimizer picks, including its
    /// synthetic regions.
    #[test]
    fn synthesized_regions_contain_all_dynamic_writes(
        raw in vec(any::<u32>(), 1..32),
        trip in 1u32..20,
        ckpt_at in 0usize..32,
    ) {
        let p = build(&raw, trip, ckpt_at);
        let cfg = Cfg::build(&p);
        let opts = CkptOptions { mem_words: MEM_WORDS, ..Default::default() };
        let synth = synthesize(&p, &cfg, &opts);
        let ckpts = synth.synthesized.checkpoints.clone();
        let report = dirty_report_at(&p, &cfg, opts.bits_lo, MEM_WORDS, &ckpts);
        let r = check_sound(&p, &report, &ckpts);
        prop_assert!(r.is_ok(), "{}\n{}", r.unwrap_err(), p.disassemble());
    }
}

/// The shipped kernels are the programs the masks actually protect: check
/// containment on full runs at the governor's bitwidth extremes.
#[test]
fn every_kernel_write_is_contained_in_its_dirty_region() {
    for bits in [1u8, 8] {
        for id in KernelId::ALL {
            let (w, h) = id.min_dims();
            let spec = id.spec(w, h);
            let cfg = Cfg::build(&spec.program);
            let ckpts = declared_checkpoints(&spec.program);
            let report = dirty_report_at(&spec.program, &cfg, bits, spec.mem_words, &ckpts);
            let mut vm = Vm::new(spec.program.clone(), spec.mem_words);
            let mut current = 0usize;
            for _ in 0..5_000_000u64 {
                let pc = vm.pc();
                if ckpts.iter().any(|&(cp, _)| cp == pc) {
                    current = pc;
                }
                let Some(instr) = vm.peek() else { break };
                let region = report
                    .regions
                    .iter()
                    .find(|r| r.start_pc == current)
                    .unwrap_or_else(|| panic!("{}: no region @{current}", id.name()));
                if let Some(d) = instr.dst() {
                    assert!(
                        region.dirty_regs & (1u16 << d.0) != 0,
                        "{} at {bits}b pc {pc}: r{} not in dirty set of region @{current}",
                        id.name(),
                        d.0
                    );
                }
                let store_addr = match instr {
                    Instr::St(a, _) => Some(i64::from(a)),
                    Instr::StInd(b, off, _) => Some(i64::from(vm.reg(b, 0)) + i64::from(off)),
                    _ => None,
                };
                if let Some(a) = store_addr {
                    assert!(
                        region.mem.contains(a as u32),
                        "{} at {bits}b pc {pc}: store to {a} outside region @{current}",
                        id.name()
                    );
                }
                if vm.step().expect("kernel VMs do not fault") == StepEvent::Halted {
                    break;
                }
            }
            assert!(vm.halted(), "{} did not halt", id.name());
        }
    }
}
