//! Cross-kernel soundness of the WCEC certificates: for every kernel
//! generator, walk the VM to completion charging each retired instruction
//! at the static per-class price, and check that the dynamic total sits
//! between the proven region floor and the certified program ceiling.
//!
//! This is the empirical anchor for both directions of the bound. The
//! ceiling must dominate any real run (else `NVP-I002` headroom numbers
//! are lies); the floor must never exceed a real run (else `NVP-E006`
//! could "prove" livelock on a program that demonstrably finishes — the
//! exact failure mode that motivated deriving the floor separately
//! instead of reusing the over-approximate WCEC).

use nvp_analysis::{wcec_report, Cfg, CostModel, Wcec};
use nvp_isa::vm::Vm;
use nvp_kernels::KernelId;

const STEP_CAP: u64 = 5_000_000;

/// Walks `id` at its minimum dims, charging static prices at `bits`.
/// Returns (actual_nj, halted).
fn dynamic_cost(id: KernelId, cost: &CostModel) -> (f64, bool) {
    let (w, h) = id.min_dims();
    let spec = id.spec(w, h);
    let mut vm = Vm::new(spec.program.clone(), spec.mem_words);
    let mut actual = 0.0f64;
    for _ in 0..STEP_CAP {
        let Some(instr) = vm.peek() else {
            return (actual, true);
        };
        actual += cost.instr_nj(instr);
        if vm.step().expect("kernel VMs do not fault") == nvp_isa::StepEvent::Halted {
            return (actual, true);
        }
    }
    (actual, false)
}

#[test]
fn every_kernel_run_sits_between_floor_and_ceiling() {
    for bits in [1u8, 8] {
        let cost = CostModel::for_bits(bits);
        for id in KernelId::ALL {
            let (w, h) = id.min_dims();
            let spec = id.spec(w, h);
            let cfg = Cfg::build(&spec.program);
            let report = wcec_report(&spec.program, &cfg, &cost);
            let (actual, halted) = dynamic_cost(id, &cost);
            assert!(halted, "{} did not halt within {STEP_CAP} steps", id.name());
            assert!(actual > 0.0, "{} charged nothing", id.name());

            if let Wcec::Bounded(ceiling) = report.program {
                assert!(
                    ceiling >= actual - 1e-9,
                    "{} at {bits}b: ceiling {ceiling:.1} nJ below actual {actual:.1} nJ",
                    id.name()
                );
            }
            // The entry region ends at the first checkpoint, so its floor
            // must be under the cost of the whole run.
            let entry = &report.regions[0];
            assert!(
                entry.min_nj <= actual + 1e-9,
                "{} at {bits}b: floor {:.1} nJ above actual {actual:.1} nJ",
                id.name(),
                entry.min_nj
            );
        }
    }
}

#[test]
fn certificates_are_exact_for_fully_static_kernels() {
    // Kernels whose trip counts are all compile-time constants should get
    // a certificate with zero slack: floor == actual == ceiling. This
    // pins the analysis against silent precision regressions.
    let exact: &[KernelId] = &[KernelId::Sobel, KernelId::Tiff2Bw];
    let cost = CostModel::for_bits(8);
    for &id in exact {
        let (w, h) = id.min_dims();
        let spec = id.spec(w, h);
        let cfg = Cfg::build(&spec.program);
        let report = wcec_report(&spec.program, &cfg, &cost);
        let (actual, halted) = dynamic_cost(id, &cost);
        assert!(halted);
        let Wcec::Bounded(ceiling) = report.program else {
            panic!("{} unbounded", id.name());
        };
        assert!(
            (ceiling - actual).abs() < 1e-6,
            "{}: ceiling {ceiling:.3} vs actual {actual:.3}",
            id.name()
        );
    }
}
