//! Structured event tracing for the NVP simulation stack.
//!
//! The simulator's end-of-run aggregates (`RunReport`) tell you *what*
//! happened; this crate records *when*. An instrumented run emits a stream
//! of [`Event`]s — threshold crossings, power emergencies, backups,
//! outages, restores, frame commits/parks/merges, governor switches,
//! retention decay — into any [`Tracer`] sink: an unbounded [`VecSink`],
//! a bounded [`RingSink`], a metrics-only [`CounterSink`], or a streaming
//! [`JsonlSink`] whose output the `nvp-trace` binary can `summarize`,
//! `timeline`, and `diff`.
//!
//! Design constraints, in priority order:
//!
//! 1. **Near-zero cost when off.** [`NoopTracer`] reports itself disabled
//!    and the [`emit`] helper skips event construction entirely; the only
//!    residual cost at a trace point is one virtual `enabled()` call, and
//!    no trace point sits on a per-instruction path.
//! 2. **Dependency-free.** Events carry raw `u64` ticks and `f64`
//!    nanojoules rather than `nvp-power` newtypes so every runtime crate
//!    (including `nvp-power` itself) can depend on this one without a
//!    cycle.
//! 3. **Self-checking.** The `run_end` event carries the simulator's own
//!    totals; [`TraceSummary::reconcile`] cross-checks them against the
//!    energy ledger summed from individual events, so instrumentation
//!    holes are detected mechanically instead of by eyeball.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod event;
mod sink;
mod summary;
mod timeline;

pub use diff::{diff, TraceDiff};
pub use event::{Event, EventKind, ParseError, SwitchReason};
pub use sink::{
    emit, CounterSink, JsonlBufSink, JsonlSink, NoopTracer, RingSink, TeeSink, Tracer, VecSink,
};
pub use summary::{
    EnergyLedger, Histogram, LedgerMismatch, MergeError, ReadError, RunEndTotals, RunSummary,
    TraceSummary,
};
pub use timeline::{render as render_timeline, split_runs, TimelineRun};
