//! Text timeline rendering: on/off phases with backup/restore/commit marks.
//!
//! The timeline compresses a run's tick range into a fixed-width row of
//! cells. Each cell is `#` when the system was powered and executing for
//! most of that slice, `.` when dark, and is overstruck by a marker when a
//! discrete event landed there: `B` backup, `R` restore, `C` commit,
//! `M` merge, `!` retention decay. Markers win over phase shading, and the
//! "most severe" marker wins within a cell (decay > backup > restore >
//! merge > commit).

use crate::event::Event;

/// One run's rendering input: the events between a `run_start` (inclusive)
/// and the next one (exclusive).
#[derive(Debug, Clone)]
pub struct TimelineRun<'a> {
    /// Run label ("" for implicit runs).
    pub label: &'a str,
    /// Events of this run, in trace order.
    pub events: &'a [Event],
}

/// Splits a flat event list into per-run slices on `run_start` boundaries.
pub fn split_runs(events: &[Event]) -> Vec<TimelineRun<'_>> {
    let mut runs: Vec<TimelineRun<'_>> = Vec::new();
    let mut start = 0usize;
    let mut label: &str = "";
    let mut seen_any = false;
    for (i, ev) in events.iter().enumerate() {
        if let Event::RunStart { label: l, .. } = ev {
            if seen_any {
                runs.push(TimelineRun {
                    label,
                    events: &events[start..i],
                });
            }
            start = i;
            label = l;
            seen_any = true;
        } else {
            seen_any = true;
        }
    }
    if seen_any {
        runs.push(TimelineRun {
            label,
            events: &events[start..],
        });
    }
    runs
}

/// Marker severity: higher overrides lower within one cell.
fn marker(ev: &Event) -> Option<(u8, char)> {
    match ev {
        Event::RetentionDecay { .. } => Some((5, '!')),
        Event::Backup { .. } => Some((4, 'B')),
        Event::Restore { .. } => Some((3, 'R')),
        Event::Merge { .. } => Some((2, 'M')),
        Event::FrameCommitted { .. } => Some((1, 'C')),
        _ => None,
    }
}

/// Renders one run as a multi-line string: a header, the phase row and a
/// tick ruler.
pub fn render_run(run: &TimelineRun<'_>, width: usize) -> String {
    let width = width.clamp(10, 400);
    let mut out = String::new();
    let label = if run.label.is_empty() {
        "(unlabeled run)"
    } else {
        run.label
    };
    let first = run.events.first().map(|e| e.tick()).unwrap_or(0);
    let last = run.events.last().map(|e| e.tick()).unwrap_or(first);
    let span = (last - first).max(1);
    out.push_str(&format!(
        "{label}  ticks {first}..{last}  ({} events)\n",
        run.events.len()
    ));
    if run.events.is_empty() {
        out.push_str("  (empty)\n");
        return out;
    }

    // Phase reconstruction: walk backup (power down) / restore & run_start
    // (power up) transitions and shade each cell by the dominant phase.
    // on_time[i] accumulates powered ticks inside cell i.
    let cell_ticks = span as f64 / width as f64;
    let cell_of =
        |tick: u64| -> usize { (((tick - first) as f64 / cell_ticks) as usize).min(width - 1) };
    let mut on_time = vec![0.0f64; width];
    let mut marks: Vec<Option<(u8, char)>> = vec![None; width];
    let mut powered = true; // runs begin powered (cold start happens at tick 0)
    let mut cursor = first;
    let credit = |from: u64, to: u64, powered: bool, on_time: &mut Vec<f64>| {
        if !powered || to <= from {
            return;
        }
        // Spread the powered interval across the cells it covers.
        let (a, b) = (cell_of(from), cell_of(to));
        if a == b {
            on_time[a] += (to - from) as f64;
        } else {
            for (i, slot) in on_time.iter_mut().enumerate().take(b + 1).skip(a) {
                let cell_start = first as f64 + i as f64 * cell_ticks;
                let cell_end = cell_start + cell_ticks;
                let lo = (from as f64).max(cell_start);
                let hi = (to as f64).min(cell_end);
                if hi > lo {
                    *slot += hi - lo;
                }
            }
        }
    };
    for ev in run.events {
        let t = ev.tick();
        match ev {
            Event::Backup { .. } => {
                credit(cursor, t, powered, &mut on_time);
                powered = false;
                cursor = t;
            }
            Event::Restore { .. } | Event::RunStart { .. } => {
                credit(cursor, t, powered, &mut on_time);
                powered = true;
                cursor = t;
            }
            _ => {}
        }
        if let Some((sev, ch)) = marker(ev) {
            let cell = cell_of(t);
            if marks[cell].map(|(s, _)| s < sev).unwrap_or(true) {
                marks[cell] = Some((sev, ch));
            }
        }
    }
    credit(cursor, last, powered, &mut on_time);

    let mut row = String::with_capacity(width + 4);
    row.push_str("  |");
    for i in 0..width {
        if let Some((_, ch)) = marks[i] {
            row.push(ch);
        } else if on_time[i] >= cell_ticks * 0.5 {
            row.push('#');
        } else {
            row.push('.');
        }
    }
    row.push('|');
    out.push_str(&row);
    out.push('\n');
    out.push_str(&format!("  |{:<w$}|\n", format!("^t={first}"), w = width));
    out.push_str("  legend: # on  . off  B backup  R restore  C commit  M merge  ! decay\n");
    out
}

/// Renders every run in an event list.
pub fn render(events: &[Event], width: usize) -> String {
    let runs = split_runs(events);
    if runs.is_empty() {
        return "(empty trace)\n".to_string();
    }
    let mut out = String::new();
    for run in &runs {
        out.push_str(&render_run(run, width));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backup(tick: u64) -> Event {
        Event::Backup {
            tick,
            cost_nj: 1.0,
            saved_nj: 0.0,
            live_fraction: 1.0,
            bits: 8,
        }
    }

    fn restore(tick: u64) -> Event {
        Event::Restore {
            tick,
            cost_nj: 1.0,
            outage_ticks: 10,
            rolled_forward: false,
            cold: false,
        }
    }

    #[test]
    fn split_runs_handles_implicit_and_explicit() {
        assert!(split_runs(&[]).is_empty());
        // Implicit: no run_start at all.
        let evs = [backup(5), restore(9)];
        let runs = split_runs(&evs);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].label, "");
        assert_eq!(runs[0].events.len(), 2);
        // Two explicit runs.
        let evs = [
            Event::RunStart {
                tick: 0,
                label: "a".into(),
            },
            backup(5),
            Event::RunStart {
                tick: 0,
                label: "b".into(),
            },
            restore(3),
            restore(7),
        ];
        let runs = split_runs(&evs);
        assert_eq!(runs.len(), 2);
        assert_eq!((runs[0].label, runs[0].events.len()), ("a", 2));
        assert_eq!((runs[1].label, runs[1].events.len()), ("b", 3));
    }

    #[test]
    fn timeline_shades_on_off_and_marks() {
        // On for 0..50 (backup at 50), dark 50..90, on 90..100.
        let evs = [
            Event::RunStart {
                tick: 0,
                label: "r".into(),
            },
            backup(50),
            restore(90),
            Event::FrameCommitted {
                tick: 99,
                lane: 0,
                input_index: 0,
                incidental: false,
            },
        ];
        let text = render(&evs, 20);
        assert!(text.contains('B'), "{text}");
        assert!(text.contains('R'), "{text}");
        assert!(text.contains('C'), "{text}");
        assert!(text.contains('#'), "{text}");
        assert!(text.contains('.'), "{text}");
        // The dark span 50..90 occupies cells ~10..18: expect a run of dots
        // between B and R.
        let row = text.lines().nth(1).unwrap();
        let b = row.find('B').unwrap();
        let r = row.find('R').unwrap();
        assert!(r > b);
        assert!(row[b + 1..r].chars().all(|c| c == '.'), "{row}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(render(&[], 40), "(empty trace)\n");
    }

    #[test]
    fn marker_severity_prefers_decay() {
        // Decay and commit land in the same cell: decay wins.
        let evs = [
            Event::FrameCommitted {
                tick: 10,
                lane: 0,
                input_index: 0,
                incidental: false,
            },
            Event::RetentionDecay {
                tick: 11,
                bit: 0,
                failures: 3,
            },
        ];
        let text = render(&evs, 10);
        assert!(text.contains('!'), "{text}");
    }
}
