//! The trace event schema.
//!
//! One [`Event`] is one timestamped occurrence in the NVP lifecycle. The
//! schema is deliberately flat — every variant carries its tick plus a
//! handful of scalar fields — so events serialize to single-line JSON
//! objects and a trace file is plain JSONL. Energies are raw nanojoules and
//! times raw ticks (no `nvp-power` newtypes) to keep this crate
//! dependency-free: every runtime crate, including `nvp-power` itself, can
//! depend on it without a cycle.

use std::fmt;

/// Why the bitwidth governor switched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchReason {
    /// The power/quality policy picked a new width.
    #[default]
    Power,
    /// The statically-proven safe-bits floor clamped the policy's choice
    /// (`nvp-lint --bitwidth` / `StaticBitsFloor`).
    StaticFloor,
}

impl SwitchReason {
    /// Stable serialization name.
    pub fn as_str(self) -> &'static str {
        match self {
            SwitchReason::Power => "power",
            SwitchReason::StaticFloor => "static_floor",
        }
    }

    fn parse(s: &str) -> Result<SwitchReason, ParseError> {
        match s {
            "power" => Ok(SwitchReason::Power),
            "static_floor" => Ok(SwitchReason::StaticFloor),
            other => Err(ParseError::new(format!("unknown switch reason '{other}'"))),
        }
    }
}

/// A structured trace event.
///
/// All energy fields are in nanojoules; all time fields in 0.1 ms
/// simulation ticks. Floating-point fields must be finite — the JSON
/// encoding has no representation for NaN or infinity.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A new simulator run begins (separates runs in a shared trace file).
    RunStart {
        /// Tick of the run's first sample (0 for a fresh simulator).
        tick: u64,
        /// Human-readable run label (kernel/profile/mode).
        label: String,
    },
    /// The capacitor crossed the restart threshold (the voltage monitor's
    /// comparator edge).
    ThresholdCross {
        /// Tick of the crossing.
        tick: u64,
        /// Capacitor level at the crossing, nJ.
        level_nj: f64,
        /// Threshold being compared against, nJ.
        threshold_nj: f64,
        /// `true` for a rising edge (charged past the threshold), `false`
        /// for a falling edge.
        up: bool,
    },
    /// The energy reserve was hit: a power emergency is declared and a
    /// backup is about to happen.
    PowerEmergency {
        /// Tick of the emergency.
        tick: u64,
        /// Capacitor level when the emergency was declared, nJ.
        level_nj: f64,
        /// The backup reserve that was violated, nJ.
        reserve_nj: f64,
    },
    /// A scoped backup (`LiveOnly`/`LiveDirty`) found no mask for the
    /// interruption pc and degraded to a full-state backup.
    BackupScopeFallback {
        /// Tick of the backup that degraded.
        tick: u64,
        /// Interruption pc the mask table had no entry for.
        pc: u64,
    },
    /// A backup was performed.
    Backup {
        /// Tick of the backup.
        tick: u64,
        /// Energy spent on this backup, nJ.
        cost_nj: f64,
        /// Energy avoided relative to a full-scope backup, nJ (0 under
        /// `BackupScope::FullState`).
        saved_nj: f64,
        /// Fraction of data state that was live at the interruption point
        /// (1.0 under full-scope backups).
        live_fraction: f64,
        /// Live-lane data bitwidth at backup time.
        bits: u8,
    },
    /// Power is out: the span between a backup and the next restore begins.
    OutageStart {
        /// First dark tick.
        tick: u64,
    },
    /// Power returned; the outage is over.
    OutageEnd {
        /// Tick at which power returned.
        tick: u64,
        /// Outage length in ticks.
        duration: u64,
    },
    /// A restore was performed.
    Restore {
        /// Tick of the restore.
        tick: u64,
        /// Energy spent on this restore, nJ.
        cost_nj: f64,
        /// Length of the outage this restore recovers from (0 for a cold
        /// start).
        outage_ticks: u64,
        /// `true` if recovery rolled forward to the newest buffered frame
        /// (incidental NVP) instead of resuming in place.
        rolled_forward: bool,
        /// `true` for the initial cold start (no preceding backup).
        cold: bool,
    },
    /// A frame committed on some SIMD lane.
    FrameCommitted {
        /// Commit tick.
        tick: u64,
        /// Lane the frame was computed on (0 = live lane).
        lane: u8,
        /// Input frame index.
        input_index: u64,
        /// `true` when committed by an incidental (non-live) lane.
        incidental: bool,
    },
    /// A partially-computed frame was parked in the resume buffer.
    FrameParked {
        /// Tick of the roll-forward that parked it.
        tick: u64,
        /// Input frame index.
        input_index: u64,
        /// Memory version plane holding the frame's data.
        version: u8,
        /// `true` if parked for recomputation from the resume marker.
        recompute: bool,
    },
    /// A parked frame was abandoned by FIFO eviction.
    FrameAbandoned {
        /// Tick of the eviction.
        tick: u64,
        /// Input frame index of the abandoned work.
        input_index: u64,
    },
    /// A parked frame merged into a free SIMD lane.
    Merge {
        /// Tick of the merge.
        tick: u64,
        /// Lane the frame rejoined on.
        lane: u8,
        /// Input frame index.
        input_index: u64,
        /// PC at which the merge matched.
        pc: u64,
    },
    /// The dynamic-bitwidth governor switched the datapath width.
    GovernorSwitch {
        /// Tick of the switch.
        tick: u64,
        /// Previous bitwidth.
        from_bits: u8,
        /// New bitwidth.
        to_bits: u8,
        /// What drove the switch (absent in pre-floor traces → `Power`).
        reason: SwitchReason,
    },
    /// Retention failures observed while restoring after an outage.
    RetentionDecay {
        /// Tick of the restore that observed the decay.
        tick: u64,
        /// Bit position (0 = LSB).
        bit: u8,
        /// Number of expired cells at that position.
        failures: u64,
    },
    /// The wait-compute baseline's ESD ran dry mid-frame (the whole frame
    /// is lost — volatile MCU).
    WaitStall {
        /// Tick of the stall.
        tick: u64,
        /// ESD level at the stall, nJ.
        level_nj: f64,
        /// Energy the next burst needed, nJ.
        needed_nj: f64,
    },
    /// Aggregated income/compute energy since the previous flush.
    ///
    /// Income and compute accrue every tick and every instruction; emitting
    /// them per occurrence would dwarf the rest of the trace, so the
    /// simulator flushes deltas at phase boundaries (backup, restore, run
    /// end). Summing the deltas reproduces the run totals.
    EnergyFlush {
        /// Tick of the flush.
        tick: u64,
        /// Income banked since the last flush, nJ.
        income_nj: f64,
        /// Compute energy spent since the last flush, nJ.
        compute_nj: f64,
    },
    /// The run finished; carries the run's aggregate totals so a trace is
    /// self-checking (the summed per-event ledger must reconcile).
    RunEnd {
        /// Final tick (total ticks simulated).
        tick: u64,
        /// Total energy banked, nJ.
        income_nj: f64,
        /// Total compute energy, nJ.
        compute_nj: f64,
        /// Total backup energy, nJ.
        backup_nj: f64,
        /// Total restore energy, nJ.
        restore_nj: f64,
        /// Total backup energy avoided by live-only scoping, nJ.
        saved_nj: f64,
        /// Number of backups.
        backups: u64,
        /// Number of restores.
        restores: u64,
        /// Frames committed (live + incidental).
        frames: u64,
        /// Lane-weighted forward progress.
        forward_progress: u64,
    },
}

/// Fieldless mirror of [`Event`] for counting and dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// [`Event::RunStart`].
    RunStart,
    /// [`Event::ThresholdCross`].
    ThresholdCross,
    /// [`Event::PowerEmergency`].
    PowerEmergency,
    /// [`Event::BackupScopeFallback`].
    BackupScopeFallback,
    /// [`Event::Backup`].
    Backup,
    /// [`Event::OutageStart`].
    OutageStart,
    /// [`Event::OutageEnd`].
    OutageEnd,
    /// [`Event::Restore`].
    Restore,
    /// [`Event::FrameCommitted`].
    FrameCommitted,
    /// [`Event::FrameParked`].
    FrameParked,
    /// [`Event::FrameAbandoned`].
    FrameAbandoned,
    /// [`Event::Merge`].
    Merge,
    /// [`Event::GovernorSwitch`].
    GovernorSwitch,
    /// [`Event::RetentionDecay`].
    RetentionDecay,
    /// [`Event::WaitStall`].
    WaitStall,
    /// [`Event::EnergyFlush`].
    EnergyFlush,
    /// [`Event::RunEnd`].
    RunEnd,
}

impl EventKind {
    /// Every kind, in schema order.
    pub const ALL: [EventKind; 17] = [
        EventKind::RunStart,
        EventKind::ThresholdCross,
        EventKind::PowerEmergency,
        EventKind::BackupScopeFallback,
        EventKind::Backup,
        EventKind::OutageStart,
        EventKind::OutageEnd,
        EventKind::Restore,
        EventKind::FrameCommitted,
        EventKind::FrameParked,
        EventKind::FrameAbandoned,
        EventKind::Merge,
        EventKind::GovernorSwitch,
        EventKind::RetentionDecay,
        EventKind::WaitStall,
        EventKind::EnergyFlush,
        EventKind::RunEnd,
    ];

    /// Number of kinds (array-index domain).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable wire name (the JSON `"ev"` discriminant).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RunStart => "run_start",
            EventKind::ThresholdCross => "threshold_cross",
            EventKind::PowerEmergency => "power_emergency",
            EventKind::BackupScopeFallback => "backup_scope_fallback",
            EventKind::Backup => "backup",
            EventKind::OutageStart => "outage_start",
            EventKind::OutageEnd => "outage_end",
            EventKind::Restore => "restore",
            EventKind::FrameCommitted => "frame_committed",
            EventKind::FrameParked => "frame_parked",
            EventKind::FrameAbandoned => "frame_abandoned",
            EventKind::Merge => "merge",
            EventKind::GovernorSwitch => "governor_switch",
            EventKind::RetentionDecay => "retention_decay",
            EventKind::WaitStall => "wait_stall",
            EventKind::EnergyFlush => "energy_flush",
            EventKind::RunEnd => "run_end",
        }
    }

    /// Dense array index (inverse of `ALL[i]`).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("in ALL")
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Event {
    /// The event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::RunStart { .. } => EventKind::RunStart,
            Event::ThresholdCross { .. } => EventKind::ThresholdCross,
            Event::PowerEmergency { .. } => EventKind::PowerEmergency,
            Event::BackupScopeFallback { .. } => EventKind::BackupScopeFallback,
            Event::Backup { .. } => EventKind::Backup,
            Event::OutageStart { .. } => EventKind::OutageStart,
            Event::OutageEnd { .. } => EventKind::OutageEnd,
            Event::Restore { .. } => EventKind::Restore,
            Event::FrameCommitted { .. } => EventKind::FrameCommitted,
            Event::FrameParked { .. } => EventKind::FrameParked,
            Event::FrameAbandoned { .. } => EventKind::FrameAbandoned,
            Event::Merge { .. } => EventKind::Merge,
            Event::GovernorSwitch { .. } => EventKind::GovernorSwitch,
            Event::RetentionDecay { .. } => EventKind::RetentionDecay,
            Event::WaitStall { .. } => EventKind::WaitStall,
            Event::EnergyFlush { .. } => EventKind::EnergyFlush,
            Event::RunEnd { .. } => EventKind::RunEnd,
        }
    }

    /// The event's tick.
    pub fn tick(&self) -> u64 {
        match self {
            Event::RunStart { tick, .. }
            | Event::ThresholdCross { tick, .. }
            | Event::PowerEmergency { tick, .. }
            | Event::BackupScopeFallback { tick, .. }
            | Event::Backup { tick, .. }
            | Event::OutageStart { tick }
            | Event::OutageEnd { tick, .. }
            | Event::Restore { tick, .. }
            | Event::FrameCommitted { tick, .. }
            | Event::FrameParked { tick, .. }
            | Event::FrameAbandoned { tick, .. }
            | Event::Merge { tick, .. }
            | Event::GovernorSwitch { tick, .. }
            | Event::RetentionDecay { tick, .. }
            | Event::WaitStall { tick, .. }
            | Event::EnergyFlush { tick, .. }
            | Event::RunEnd { tick, .. } => *tick,
        }
    }

    /// Serializes the event to one line of JSON (no trailing newline).
    ///
    /// Numbers use Rust's shortest round-trip float formatting, so a
    /// parse/serialize cycle is lossless.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new(self.kind());
        match self {
            Event::RunStart { tick, label } => {
                w.num("t", *tick as f64);
                w.str("label", label);
            }
            Event::ThresholdCross {
                tick,
                level_nj,
                threshold_nj,
                up,
            } => {
                w.num("t", *tick as f64);
                w.num("level_nj", *level_nj);
                w.num("threshold_nj", *threshold_nj);
                w.bool("up", *up);
            }
            Event::PowerEmergency {
                tick,
                level_nj,
                reserve_nj,
            } => {
                w.num("t", *tick as f64);
                w.num("level_nj", *level_nj);
                w.num("reserve_nj", *reserve_nj);
            }
            Event::BackupScopeFallback { tick, pc } => {
                w.num("t", *tick as f64);
                w.num("pc", *pc as f64);
            }
            Event::Backup {
                tick,
                cost_nj,
                saved_nj,
                live_fraction,
                bits,
            } => {
                w.num("t", *tick as f64);
                w.num("cost_nj", *cost_nj);
                w.num("saved_nj", *saved_nj);
                w.num("live_fraction", *live_fraction);
                w.num("bits", f64::from(*bits));
            }
            Event::OutageStart { tick } => w.num("t", *tick as f64),
            Event::OutageEnd { tick, duration } => {
                w.num("t", *tick as f64);
                w.num("duration", *duration as f64);
            }
            Event::Restore {
                tick,
                cost_nj,
                outage_ticks,
                rolled_forward,
                cold,
            } => {
                w.num("t", *tick as f64);
                w.num("cost_nj", *cost_nj);
                w.num("outage_ticks", *outage_ticks as f64);
                w.bool("rolled_forward", *rolled_forward);
                w.bool("cold", *cold);
            }
            Event::FrameCommitted {
                tick,
                lane,
                input_index,
                incidental,
            } => {
                w.num("t", *tick as f64);
                w.num("lane", f64::from(*lane));
                w.num("input_index", *input_index as f64);
                w.bool("incidental", *incidental);
            }
            Event::FrameParked {
                tick,
                input_index,
                version,
                recompute,
            } => {
                w.num("t", *tick as f64);
                w.num("input_index", *input_index as f64);
                w.num("version", f64::from(*version));
                w.bool("recompute", *recompute);
            }
            Event::FrameAbandoned { tick, input_index } => {
                w.num("t", *tick as f64);
                w.num("input_index", *input_index as f64);
            }
            Event::Merge {
                tick,
                lane,
                input_index,
                pc,
            } => {
                w.num("t", *tick as f64);
                w.num("lane", f64::from(*lane));
                w.num("input_index", *input_index as f64);
                w.num("pc", *pc as f64);
            }
            Event::GovernorSwitch {
                tick,
                from_bits,
                to_bits,
                reason,
            } => {
                w.num("t", *tick as f64);
                w.num("from_bits", f64::from(*from_bits));
                w.num("to_bits", f64::from(*to_bits));
                w.str("reason", reason.as_str());
            }
            Event::RetentionDecay {
                tick,
                bit,
                failures,
            } => {
                w.num("t", *tick as f64);
                w.num("bit", f64::from(*bit));
                w.num("failures", *failures as f64);
            }
            Event::WaitStall {
                tick,
                level_nj,
                needed_nj,
            } => {
                w.num("t", *tick as f64);
                w.num("level_nj", *level_nj);
                w.num("needed_nj", *needed_nj);
            }
            Event::EnergyFlush {
                tick,
                income_nj,
                compute_nj,
            } => {
                w.num("t", *tick as f64);
                w.num("income_nj", *income_nj);
                w.num("compute_nj", *compute_nj);
            }
            Event::RunEnd {
                tick,
                income_nj,
                compute_nj,
                backup_nj,
                restore_nj,
                saved_nj,
                backups,
                restores,
                frames,
                forward_progress,
            } => {
                w.num("t", *tick as f64);
                w.num("income_nj", *income_nj);
                w.num("compute_nj", *compute_nj);
                w.num("backup_nj", *backup_nj);
                w.num("restore_nj", *restore_nj);
                w.num("saved_nj", *saved_nj);
                w.num("backups", *backups as f64);
                w.num("restores", *restores as f64);
                w.num("frames", *frames as f64);
                w.num("forward_progress", *forward_progress as f64);
            }
        }
        w.finish()
    }

    /// Parses one JSONL line back into an event.
    pub fn from_json(line: &str) -> Result<Event, ParseError> {
        let fields = parse_object(line)?;
        let ev = fields.str_field("ev")?;
        let t = fields.u64_field("t")?;
        let kind = EventKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == ev)
            .ok_or_else(|| ParseError::new(format!("unknown event kind '{ev}'")))?;
        Ok(match kind {
            EventKind::RunStart => Event::RunStart {
                tick: t,
                label: fields.str_field("label")?.to_string(),
            },
            EventKind::ThresholdCross => Event::ThresholdCross {
                tick: t,
                level_nj: fields.num_field("level_nj")?,
                threshold_nj: fields.num_field("threshold_nj")?,
                up: fields.bool_field("up")?,
            },
            EventKind::PowerEmergency => Event::PowerEmergency {
                tick: t,
                level_nj: fields.num_field("level_nj")?,
                reserve_nj: fields.num_field("reserve_nj")?,
            },
            EventKind::BackupScopeFallback => Event::BackupScopeFallback {
                tick: t,
                pc: fields.u64_field("pc")?,
            },
            EventKind::Backup => Event::Backup {
                tick: t,
                cost_nj: fields.num_field("cost_nj")?,
                saved_nj: fields.num_field("saved_nj")?,
                live_fraction: fields.num_field("live_fraction")?,
                bits: fields.u64_field("bits")? as u8,
            },
            EventKind::OutageStart => Event::OutageStart { tick: t },
            EventKind::OutageEnd => Event::OutageEnd {
                tick: t,
                duration: fields.u64_field("duration")?,
            },
            EventKind::Restore => Event::Restore {
                tick: t,
                cost_nj: fields.num_field("cost_nj")?,
                outage_ticks: fields.u64_field("outage_ticks")?,
                rolled_forward: fields.bool_field("rolled_forward")?,
                cold: fields.bool_field("cold")?,
            },
            EventKind::FrameCommitted => Event::FrameCommitted {
                tick: t,
                lane: fields.u64_field("lane")? as u8,
                input_index: fields.u64_field("input_index")?,
                incidental: fields.bool_field("incidental")?,
            },
            EventKind::FrameParked => Event::FrameParked {
                tick: t,
                input_index: fields.u64_field("input_index")?,
                version: fields.u64_field("version")? as u8,
                recompute: fields.bool_field("recompute")?,
            },
            EventKind::FrameAbandoned => Event::FrameAbandoned {
                tick: t,
                input_index: fields.u64_field("input_index")?,
            },
            EventKind::Merge => Event::Merge {
                tick: t,
                lane: fields.u64_field("lane")? as u8,
                input_index: fields.u64_field("input_index")?,
                pc: fields.u64_field("pc")?,
            },
            EventKind::GovernorSwitch => Event::GovernorSwitch {
                tick: t,
                from_bits: fields.u64_field("from_bits")? as u8,
                to_bits: fields.u64_field("to_bits")? as u8,
                // Traces written before the static-floor work have no
                // reason field; those switches were all policy-driven.
                reason: match fields.str_field("reason") {
                    Ok(s) => SwitchReason::parse(s)?,
                    Err(_) => SwitchReason::Power,
                },
            },
            EventKind::RetentionDecay => Event::RetentionDecay {
                tick: t,
                bit: fields.u64_field("bit")? as u8,
                failures: fields.u64_field("failures")?,
            },
            EventKind::WaitStall => Event::WaitStall {
                tick: t,
                level_nj: fields.num_field("level_nj")?,
                needed_nj: fields.num_field("needed_nj")?,
            },
            EventKind::EnergyFlush => Event::EnergyFlush {
                tick: t,
                income_nj: fields.num_field("income_nj")?,
                compute_nj: fields.num_field("compute_nj")?,
            },
            EventKind::RunEnd => Event::RunEnd {
                tick: t,
                income_nj: fields.num_field("income_nj")?,
                compute_nj: fields.num_field("compute_nj")?,
                backup_nj: fields.num_field("backup_nj")?,
                restore_nj: fields.num_field("restore_nj")?,
                saved_nj: fields.num_field("saved_nj")?,
                backups: fields.u64_field("backups")?,
                restores: fields.u64_field("restores")?,
                frames: fields.u64_field("frames")?,
                forward_progress: fields.u64_field("forward_progress")?,
            },
        })
    }
}

/// Error parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
}

impl ParseError {
    fn new(msg: impl Into<String>) -> Self {
        ParseError { msg: msg.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------------
// Minimal flat-JSON writer/reader. Trace lines are single-level objects with
// string, finite-number and boolean values only; this is not a general JSON
// implementation.

struct JsonWriter {
    buf: String,
}

impl JsonWriter {
    fn new(kind: EventKind) -> Self {
        let mut w = JsonWriter { buf: String::new() };
        w.buf.push('{');
        w.str("ev", kind.name());
        w
    }

    fn sep(&mut self) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
    }

    fn key(&mut self, k: &str) {
        self.sep();
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push('"');
        for c in v.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    fn num(&mut self, k: &str, v: f64) {
        debug_assert!(v.is_finite(), "trace numbers must be finite");
        self.key(k);
        // Integral values print without a fractional part; everything else
        // uses shortest-round-trip formatting.
        if v.fract() == 0.0 && v.abs() < 9.0e15 {
            self.buf.push_str(&format!("{}", v as i64));
        } else {
            self.buf.push_str(&format!("{v}"));
        }
    }

    fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(f64),
    Str(String),
    Bool(bool),
}

struct Fields(Vec<(String, Val)>);

impl Fields {
    fn get(&self, key: &str) -> Result<&Val, ParseError> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| ParseError::new(format!("missing field '{key}'")))
    }

    fn str_field(&self, key: &str) -> Result<&str, ParseError> {
        match self.get(key)? {
            Val::Str(s) => Ok(s),
            other => Err(ParseError::new(format!(
                "field '{key}' is not a string: {other:?}"
            ))),
        }
    }

    fn num_field(&self, key: &str) -> Result<f64, ParseError> {
        match self.get(key)? {
            Val::Num(n) => Ok(*n),
            other => Err(ParseError::new(format!(
                "field '{key}' is not a number: {other:?}"
            ))),
        }
    }

    fn u64_field(&self, key: &str) -> Result<u64, ParseError> {
        let n = self.num_field(key)?;
        if n < 0.0 || n.fract() != 0.0 || n > 9.0e15 {
            return Err(ParseError::new(format!(
                "field '{key}' is not an unsigned integer: {n}"
            )));
        }
        Ok(n as u64)
    }

    fn bool_field(&self, key: &str) -> Result<bool, ParseError> {
        match self.get(key)? {
            Val::Bool(b) => Ok(*b),
            other => Err(ParseError::new(format!(
                "field '{key}' is not a boolean: {other:?}"
            ))),
        }
    }
}

fn parse_object(line: &str) -> Result<Fields, ParseError> {
    let mut chars = line.trim().char_indices().peekable();
    let s = line.trim();
    let mut fields = Vec::new();
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err(ParseError::new("expected '{'")),
    }
    loop {
        match chars.peek() {
            Some((_, '}')) => {
                chars.next();
                break;
            }
            Some((_, ',')) if !fields.is_empty() => {
                chars.next();
            }
            Some(_) if fields.is_empty() => {}
            _ => return Err(ParseError::new("expected ',' or '}'")),
        }
        let key = parse_string(s, &mut chars)?;
        match chars.next() {
            Some((_, ':')) => {}
            _ => return Err(ParseError::new("expected ':'")),
        }
        let val = match chars.peek() {
            Some((_, '"')) => Val::Str(parse_string(s, &mut chars)?),
            Some((_, 't' | 'f')) => {
                let word: String = std::iter::from_fn(|| {
                    chars
                        .next_if(|(_, c)| c.is_ascii_alphabetic())
                        .map(|(_, c)| c)
                })
                .collect();
                match word.as_str() {
                    "true" => Val::Bool(true),
                    "false" => Val::Bool(false),
                    other => return Err(ParseError::new(format!("bad literal '{other}'"))),
                }
            }
            Some(_) => {
                let tok: String = std::iter::from_fn(|| {
                    chars
                        .next_if(|(_, c)| matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                        .map(|(_, c)| c)
                })
                .collect();
                let n: f64 = tok
                    .parse()
                    .map_err(|_| ParseError::new(format!("bad number '{tok}'")))?;
                Val::Num(n)
            }
            None => return Err(ParseError::new("unexpected end of line")),
        };
        fields.push((key, val));
    }
    Ok(Fields(fields))
}

fn parse_string(
    s: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Result<String, ParseError> {
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(ParseError::new("expected '\"'")),
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((i, 'u')) => {
                    let hex = s
                        .get(i + 1..i + 5)
                        .ok_or_else(|| ParseError::new("truncated \\u escape"))?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| ParseError::new(format!("bad \\u escape '{hex}'")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| ParseError::new("invalid \\u code point"))?,
                    );
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                other => return Err(ParseError::new(format!("bad escape {other:?}"))),
            },
            Some((_, c)) => out.push(c),
            None => return Err(ParseError::new("unterminated string")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStart {
                tick: 0,
                label: "sobel/p1/\"quoted\"\\mode".to_string(),
            },
            Event::ThresholdCross {
                tick: 17,
                level_nj: 812.5,
                threshold_nj: 811.999999999,
                up: true,
            },
            Event::PowerEmergency {
                tick: 40,
                level_nj: 410.25,
                reserve_nj: 409.0,
            },
            Event::BackupScopeFallback { tick: 40, pc: 23 },
            Event::Backup {
                tick: 40,
                cost_nj: 372.1234567890123,
                saved_nj: 12.5,
                live_fraction: 0.625,
                bits: 8,
            },
            Event::OutageStart { tick: 41 },
            Event::OutageEnd {
                tick: 90,
                duration: 49,
            },
            Event::Restore {
                tick: 90,
                cost_nj: 55.0,
                outage_ticks: 49,
                rolled_forward: true,
                cold: false,
            },
            Event::FrameCommitted {
                tick: 120,
                lane: 2,
                input_index: 7,
                incidental: true,
            },
            Event::FrameParked {
                tick: 90,
                input_index: 3,
                version: 1,
                recompute: true,
            },
            Event::FrameAbandoned {
                tick: 90,
                input_index: 1,
            },
            Event::Merge {
                tick: 100,
                lane: 1,
                input_index: 3,
                pc: 12,
            },
            Event::GovernorSwitch {
                tick: 55,
                from_bits: 8,
                to_bits: 2,
                reason: SwitchReason::StaticFloor,
            },
            Event::RetentionDecay {
                tick: 90,
                bit: 0,
                failures: 144,
            },
            Event::WaitStall {
                tick: 300,
                level_nj: 4.5,
                needed_nj: 20.9,
            },
            Event::EnergyFlush {
                tick: 40,
                income_nj: 1234.0000000001,
                compute_nj: 900.125,
            },
            Event::RunEnd {
                tick: 15000,
                income_nj: 99000.5,
                compute_nj: 60000.25,
                backup_nj: 20000.0,
                restore_nj: 5000.0,
                saved_nj: 0.0,
                backups: 42,
                restores: 43,
                frames: 9,
                forward_progress: 123456789,
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for ev in sample_events() {
            let line = ev.to_json();
            let back = Event::from_json(&line).expect(&line);
            assert_eq!(back, ev, "line: {line}");
        }
    }

    #[test]
    fn kind_names_are_unique_and_indexed() {
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::COUNT);
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn kind_and_tick_accessors() {
        for ev in sample_events() {
            let line = ev.to_json();
            assert!(line.contains(&format!("\"ev\":\"{}\"", ev.kind().name())));
            assert!(line.contains(&format!("\"t\":{}", ev.tick())));
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        let x = 0.1 + 0.2; // classic non-representable sum
        let ev = Event::EnergyFlush {
            tick: 1,
            income_nj: x,
            compute_nj: f64::MIN_POSITIVE,
        };
        match Event::from_json(&ev.to_json()).unwrap() {
            Event::EnergyFlush {
                income_nj,
                compute_nj,
                ..
            } => {
                assert_eq!(income_nj.to_bits(), x.to_bits());
                assert_eq!(compute_nj.to_bits(), f64::MIN_POSITIVE.to_bits());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Event::from_json("").is_err());
        assert!(Event::from_json("{}").is_err());
        assert!(Event::from_json("{\"ev\":\"nope\",\"t\":0}").is_err());
        assert!(Event::from_json("{\"ev\":\"backup\",\"t\":0}").is_err()); // missing fields
        assert!(Event::from_json("not json at all").is_err());
    }

    #[test]
    fn governor_switch_without_reason_defaults_to_power() {
        // Traces written before the static-floor work lack the field.
        let old = "{\"ev\":\"governor_switch\",\"t\":55,\"from_bits\":8,\"to_bits\":2}";
        assert_eq!(
            Event::from_json(old).unwrap(),
            Event::GovernorSwitch {
                tick: 55,
                from_bits: 8,
                to_bits: 2,
                reason: SwitchReason::Power,
            }
        );
        let bad = "{\"ev\":\"governor_switch\",\"t\":55,\"from_bits\":8,\"to_bits\":2,\"reason\":\"vibes\"}";
        assert!(Event::from_json(bad).is_err());
    }

    #[test]
    fn unicode_label_roundtrips() {
        let ev = Event::RunStart {
            tick: 0,
            label: "médiane/π≈3.14\t–\n“quotes”".to_string(),
        };
        assert_eq!(Event::from_json(&ev.to_json()).unwrap(), ev);
    }
}
