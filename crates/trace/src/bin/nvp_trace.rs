//! Trace-inspection CLI: `summarize`, `timeline` and `diff` over JSONL
//! traces recorded with `nvp-repro --trace <path>`.

#![forbid(unsafe_code)]

use nvp_trace::{Event, EventKind, TraceSummary};
use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
nvp-trace: inspect JSONL traces recorded with `nvp-repro --trace <path>`

USAGE:
  nvp-trace summarize <trace.jsonl>
      Per-event-type counts, inter-backup-interval and outage-duration
      histograms, per-run energy ledger. Exits nonzero if any run's summed
      ledger fails to reconcile with its run_end totals.
  nvp-trace timeline <trace.jsonl> [--width N]
      Text rendering of on/off/backup/restore phases per run (default
      width 120 cells).
  nvp-trace diff <a.jsonl> <b.jsonl>
      Compare two traces: count deltas, ledger deltas, and the first
      point of divergence. Exits nonzero if the traces differ.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("summarize") if args.len() == 2 => summarize(Path::new(&args[1])),
        Some("timeline") => timeline(&args[1..]),
        Some("diff") if args.len() == 3 => diff_cmd(Path::new(&args[1]), Path::new(&args[2])),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &Path) -> Result<(TraceSummary, Vec<Event>), String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    TraceSummary::from_reader(BufReader::new(file)).map_err(|e| format!("{}: {e}", path.display()))
}

fn summarize(path: &Path) -> ExitCode {
    let (summary, _events) = match load(path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("trace: {}  ({} events)", path.display(), summary.total());
    println!();
    println!("event counts:");
    for kind in EventKind::ALL {
        let n = summary.count(kind);
        if n > 0 {
            println!("  {:<18} {n:>10}", kind.name());
        }
    }
    println!();
    println!(
        "inter-backup intervals (ticks): {} samples, mean {:.1}, min {:?}, max {:?}",
        summary.inter_backup.count(),
        summary.inter_backup.mean(),
        summary.inter_backup.min(),
        summary.inter_backup.max()
    );
    print!("{}", summary.inter_backup.render("  "));
    println!();
    println!(
        "outage durations (ticks): {} samples, mean {:.1}, min {:?}, max {:?}",
        summary.outage_duration.count(),
        summary.outage_duration.mean(),
        summary.outage_duration.min(),
        summary.outage_duration.max()
    );
    print!("{}", summary.outage_duration.render("  "));
    if summary.retention_failures > 0 {
        println!();
        println!("retention-bit failures: {}", summary.retention_failures);
    }
    println!();
    println!("energy ledger (summed from events), per run:");
    for (i, run) in summary.runs.iter().enumerate() {
        let label = if run.label.is_empty() {
            "(unlabeled)"
        } else {
            &run.label
        };
        println!("  run {i}: {label}  ({} events)", run.events);
        println!(
            "    income {:>14.2} nJ  compute {:>14.2} nJ  backup {:>12.2} nJ  restore {:>10.2} nJ  saved {:>12.2} nJ",
            run.ledger.income_nj,
            run.ledger.compute_nj,
            run.ledger.backup_nj,
            run.ledger.restore_nj,
            run.ledger.saved_nj
        );
        match &run.end {
            Some(end) => println!(
                "    run_end totals: {} backups, {} restores, {} frames, progress {}",
                end.backups, end.restores, end.frames, end.forward_progress
            ),
            None => println!("    (no run_end event — truncated trace?)"),
        }
    }
    let bad = summary.reconcile();
    println!();
    if bad.is_empty() {
        println!("ledger reconciliation: OK (all runs match run_end totals)");
        ExitCode::SUCCESS
    } else {
        println!("ledger reconciliation: FAILED");
        for (run, mismatches) in &bad {
            for m in mismatches {
                println!("  run {run}: {m}");
            }
        }
        ExitCode::FAILURE
    }
}

fn timeline(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut width = 120usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--width" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => width = w,
                None => {
                    eprintln!("error: --width needs a number");
                    return ExitCode::from(2);
                }
            },
            a if path.is_none() => path = Some(a),
            a => {
                eprintln!("error: unexpected argument '{a}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match load(Path::new(path)) {
        Ok((_, events)) => {
            print!("{}", nvp_trace::render_timeline(&events, width));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn diff_cmd(a: &Path, b: &Path) -> ExitCode {
    let (ea, eb) = match (load(a), load(b)) {
        (Ok((_, ea)), Ok((_, eb))) => (ea, eb),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let d = nvp_trace::diff(&ea, &eb);
    print!("{d}");
    if d.identical() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
