//! The [`Tracer`] trait and the built-in sinks.
//!
//! Instrumented code holds a `&mut dyn Tracer` and calls [`emit`] with a
//! closure; when the sink reports itself disabled the closure is never
//! invoked, so event construction (string formatting, unit conversion)
//! costs nothing on the untraced path beyond one virtual call per site.

use crate::event::Event;
use crate::summary::TraceSummary;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

/// A destination for trace events.
pub trait Tracer {
    /// Whether this sink wants events at all. Call sites should skip event
    /// construction when this returns `false` (see [`emit`]).
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&mut self, ev: &Event);
}

/// Builds and records an event only if the tracer is enabled.
///
/// The closure defers all field computation — formatting a label, reading a
/// capacitor level — until we know someone is listening.
#[inline]
pub fn emit(tracer: &mut dyn Tracer, build: impl FnOnce() -> Event) {
    if tracer.enabled() {
        let ev = build();
        tracer.record(&ev);
    }
}

/// The zero-cost sink: reports itself disabled and drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _ev: &Event) {}
}

/// Unbounded in-memory sink; the workhorse for tests.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// Every event recorded, in order.
    pub events: Vec<Event>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Tracer for VecSink {
    fn record(&mut self, ev: &Event) {
        self.events.push(ev.clone());
    }
}

/// Bounded in-memory ring buffer: keeps the newest `capacity` events and
/// counts how many older ones were dropped. Suited to always-on tracing
/// where only the tail (the moments before a failure) matters.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Tracer for RingSink {
    fn record(&mut self, ev: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev.clone());
    }
}

/// Metrics-only sink: folds every event into a [`TraceSummary`] without
/// retaining the events themselves. Constant memory regardless of run
/// length.
#[derive(Debug, Clone, Default)]
pub struct CounterSink {
    /// The running summary.
    pub summary: TraceSummary,
}

impl CounterSink {
    /// Creates an empty counter sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Tracer for CounterSink {
    fn record(&mut self, ev: &Event) {
        self.summary.observe(ev);
    }
}

/// Streams events to a JSONL file, one event per line.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    written: u64,
    error: Option<std::io::Error>,
}

impl JsonlSink {
    /// Creates (truncates) `path` and streams events into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::from_file(File::create(path)?))
    }

    /// Opens `path` in append mode — used when several runs share one
    /// trace file, each delimited by its own `run_start` event.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::from_file(
            OpenOptions::new().create(true).append(true).open(path)?,
        ))
    }

    fn from_file(file: File) -> Self {
        JsonlSink {
            out: BufWriter::new(file),
            written: 0,
            error: None,
        }
    }

    /// Events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes buffered lines and surfaces any deferred write error.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.out.flush()?;
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        Ok(self.written)
    }
}

impl Tracer for JsonlSink {
    fn record(&mut self, ev: &Event) {
        if self.error.is_some() {
            return; // fail-stop: first I/O error wins, later events dropped
        }
        let line = ev.to_json();
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        } else {
            self.written += 1;
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Renders events to JSONL in memory, byte-for-byte what [`JsonlSink`]
/// would write to a file.
///
/// This is the building block for deterministic parallel tracing: each
/// sweep job records into its own `JsonlBufSink`, and the sweep engine
/// concatenates the buffers in job-submission order, producing a trace
/// file identical to a serial run's.
#[derive(Debug, Clone, Default)]
pub struct JsonlBufSink {
    buf: String,
    written: u64,
}

impl JsonlBufSink {
    /// Creates an empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events recorded so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The accumulated JSONL text (one `\n`-terminated line per event).
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the sink, returning the accumulated JSONL text.
    pub fn into_string(self) -> String {
        self.buf
    }
}

impl Tracer for JsonlBufSink {
    fn record(&mut self, ev: &Event) {
        self.buf.push_str(&ev.to_json());
        self.buf.push('\n');
        self.written += 1;
    }
}

/// Fans one event stream out to two sinks (e.g. JSONL file + counters).
pub struct TeeSink<'a> {
    /// First sink.
    pub a: &'a mut dyn Tracer,
    /// Second sink.
    pub b: &'a mut dyn Tracer,
}

impl Tracer for TeeSink<'_> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn record(&mut self, ev: &Event) {
        if self.a.enabled() {
            self.a.record(ev);
        }
        if self.b.enabled() {
            self.b.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(tick: u64) -> Event {
        Event::OutageStart { tick }
    }

    #[test]
    fn noop_never_builds_the_event() {
        let mut noop = NoopTracer;
        let mut built = false;
        emit(&mut noop, || {
            built = true;
            ev(0)
        });
        assert!(!built, "closure must not run for a disabled sink");
    }

    #[test]
    fn vec_sink_keeps_order() {
        let mut sink = VecSink::new();
        for t in 0..5 {
            emit(&mut sink, || ev(t));
        }
        let ticks: Vec<u64> = sink.events.iter().map(|e| e.tick()).collect();
        assert_eq!(ticks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_sink_drops_oldest() {
        let mut sink = RingSink::new(3);
        for t in 0..10 {
            sink.record(&ev(t));
        }
        assert_eq!(sink.dropped(), 7);
        assert_eq!(sink.len(), 3);
        let ticks: Vec<u64> = sink.events().map(|e| e.tick()).collect();
        assert_eq!(ticks, vec![7, 8, 9]);
    }

    #[test]
    fn counter_sink_counts_without_storing() {
        let mut sink = CounterSink::new();
        for t in 0..4 {
            sink.record(&ev(t));
        }
        sink.record(&Event::OutageEnd {
            tick: 9,
            duration: 5,
        });
        assert_eq!(sink.summary.count(EventKind::OutageStart), 4);
        assert_eq!(sink.summary.count(EventKind::OutageEnd), 1);
        assert_eq!(sink.summary.total(), 5);
    }

    #[test]
    fn jsonl_sink_roundtrips_through_a_file() {
        let path = std::env::temp_dir().join("nvp_trace_sink_test.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        let events = vec![
            Event::RunStart {
                tick: 0,
                label: "t".into(),
            },
            ev(3),
            Event::OutageEnd {
                tick: 8,
                duration: 5,
            },
        ];
        for e in &events {
            sink.record(e);
        }
        assert_eq!(sink.finish().unwrap(), 3);
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Vec<Event> = text.lines().map(|l| Event::from_json(l).unwrap()).collect();
        assert_eq!(back, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn buf_sink_matches_file_sink_bytes() {
        let path = std::env::temp_dir().join("nvp_trace_bufsink_test.jsonl");
        let events = vec![
            Event::RunStart {
                tick: 0,
                label: "t".into(),
            },
            ev(3),
        ];
        let mut file_sink = JsonlSink::create(&path).unwrap();
        let mut buf_sink = JsonlBufSink::new();
        for e in &events {
            file_sink.record(e);
            buf_sink.record(e);
        }
        file_sink.finish().unwrap();
        let from_file = std::fs::read_to_string(&path).unwrap();
        assert_eq!(buf_sink.written(), 2);
        assert_eq!(buf_sink.as_str(), from_file);
        assert_eq!(buf_sink.into_string(), from_file);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tee_sink_feeds_both() {
        let mut a = VecSink::new();
        let mut b = CounterSink::new();
        {
            let mut tee = TeeSink {
                a: &mut a,
                b: &mut b,
            };
            emit(&mut tee, || ev(1));
            emit(&mut tee, || ev(2));
        }
        assert_eq!(a.events.len(), 2);
        assert_eq!(b.summary.total(), 2);
    }
}
