//! Aggregation: per-kind counts, interval histograms and the energy ledger.
//!
//! A [`TraceSummary`] folds a stream of events into constant-size metrics:
//! how many of each kind, power-of-two histograms of inter-backup intervals
//! and outage durations, and an [`EnergyLedger`] summing the per-event
//! energy deltas. The ledger is the trace's self-check: summed deltas must
//! reconcile with the simulator's own `RunReport` totals (carried in the
//! `run_end` event), or the instrumentation has a hole in it.

use crate::event::{Event, EventKind, ParseError};
use std::fmt;
use std::io::BufRead;

/// Summed per-event energy deltas, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyLedger {
    /// Harvested income (from `energy_flush` events).
    pub income_nj: f64,
    /// Compute spend (from `energy_flush` events).
    pub compute_nj: f64,
    /// Backup spend (from `backup` events).
    pub backup_nj: f64,
    /// Restore spend (from `restore` events).
    pub restore_nj: f64,
    /// Backup energy avoided by live-only scoping (from `backup` events).
    pub saved_nj: f64,
}

impl EnergyLedger {
    /// Folds one event's energy contribution into the ledger.
    pub fn observe(&mut self, ev: &Event) {
        match ev {
            Event::EnergyFlush {
                income_nj,
                compute_nj,
                ..
            } => {
                self.income_nj += income_nj;
                self.compute_nj += compute_nj;
            }
            Event::Backup {
                cost_nj, saved_nj, ..
            } => {
                self.backup_nj += cost_nj;
                self.saved_nj += saved_nj;
            }
            Event::Restore { cost_nj, .. } => self.restore_nj += cost_nj,
            _ => {}
        }
    }

    /// Checks this ledger against reference totals within a relative
    /// tolerance, returning the per-field mismatches (empty = reconciled).
    ///
    /// Backup/restore sums are bit-exact (same addition order as the
    /// simulator); income/compute are telescoping flush deltas, so they can
    /// differ from the reference by a few ulps of subtraction rounding —
    /// the default tolerance in [`TraceSummary::reconcile`] allows for
    /// that and nothing more.
    pub fn mismatches(&self, reference: &EnergyLedger, rel_tol: f64) -> Vec<LedgerMismatch> {
        let fields = [
            ("income_nj", self.income_nj, reference.income_nj),
            ("compute_nj", self.compute_nj, reference.compute_nj),
            ("backup_nj", self.backup_nj, reference.backup_nj),
            ("restore_nj", self.restore_nj, reference.restore_nj),
            ("saved_nj", self.saved_nj, reference.saved_nj),
        ];
        fields
            .into_iter()
            .filter(|&(_, got, want)| {
                let scale = want.abs().max(got.abs()).max(1.0);
                (got - want).abs() > rel_tol * scale
            })
            .map(|(field, got, want)| LedgerMismatch {
                field,
                ledger_nj: got,
                reference_nj: want,
            })
            .collect()
    }
}

/// One field where the ledger and the reference totals disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerMismatch {
    /// Ledger field name.
    pub field: &'static str,
    /// Value summed from events, nJ.
    pub ledger_nj: f64,
    /// Value the `run_end` event reported, nJ.
    pub reference_nj: f64,
}

impl fmt::Display for LedgerMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: ledger {:.6} nJ vs run_end {:.6} nJ (delta {:+.6})",
            self.field,
            self.ledger_nj,
            self.reference_nj,
            self.ledger_nj - self.reference_nj
        )
    }
}

/// Two same-shaped aggregates cannot be folded together.
///
/// Returned by the `checked_merge` family when the receiver and the donor
/// were built with different bucket geometry — folding them bin-by-bin
/// would silently mix incompatible value ranges into one curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeError {
    /// Bucket unit of the histogram being merged into.
    pub ours: u64,
    /// Bucket unit of the histogram being merged from.
    pub theirs: u64,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram bucket units differ: {} vs {} (refusing to misfold)",
            self.ours, self.theirs
        )
    }
}

impl std::error::Error for MergeError {}

/// Power-of-two-binned histogram of tick counts.
///
/// Bin `i` holds samples whose unit-scaled value `v = value / unit` lies in
/// `[2^(i-1), 2^i)`, with bin 0 holding `v == 0`. The default unit is 1
/// (values are binned directly); population aggregators use coarser units
/// to bin nanojoule- or milli-MSE-scaled metrics. Good enough resolution
/// for quantities spanning many orders of magnitude, in 32 fixed bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    unit: u64,
    bins: [u64; Self::BINS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Number of fixed bins.
    pub const BINS: usize = 32;

    /// Creates an empty histogram with unit bucket width.
    pub fn new() -> Self {
        Self::with_unit(1)
    }

    /// Creates an empty histogram whose bucket boundaries are scaled by
    /// `unit` (clamped to at least 1): bin `i` holds values in
    /// `[unit·2^(i-1), unit·2^i)`.
    pub fn with_unit(unit: u64) -> Self {
        Histogram {
            unit: unit.max(1),
            bins: [0; Self::BINS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket unit this histogram was built with.
    pub fn unit(&self) -> u64 {
        self.unit
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples in one fold (used by population
    /// aggregation, where a whole cohort of devices shares one outcome).
    /// `n == 0` is a no-op.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let scaled = value / self.unit;
        let bin = if scaled == 0 {
            0
        } else {
            ((64 - scaled.leading_zeros()) as usize).min(Self::BINS - 1)
        };
        self.bins[bin] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (None if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (None if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Folds another histogram into this one (bin-wise sum; min/max/mean
    /// combine as if every sample had been recorded here).
    ///
    /// Assumes both histograms share one bucket unit; when that is not
    /// statically guaranteed, use [`checked_merge`](Self::checked_merge),
    /// which surfaces the mismatch instead of misfolding.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.bins.iter_mut().zip(other.bins.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// [`merge`](Self::merge) that refuses bucket-unit mismatches: two
    /// histograms binned at different units describe different value
    /// grids, and a bin-wise sum of them is meaningless. Nothing is folded
    /// on error.
    pub fn checked_merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        self.mergeable(other)?;
        self.merge(other);
        Ok(())
    }

    /// Folds `other` in `n` times over — as if every one of its samples
    /// had been recorded here `n` times. Used for population-weighted
    /// aggregation where one simulated outcome stands for `n` devices.
    /// Refuses bucket-unit mismatches; `n == 0` verifies compatibility
    /// but folds nothing.
    pub fn merge_weighted(&mut self, other: &Histogram, n: u64) -> Result<(), MergeError> {
        self.mergeable(other)?;
        if n == 0 {
            return Ok(());
        }
        for (mine, theirs) in self.bins.iter_mut().zip(other.bins.iter()) {
            *mine += theirs.saturating_mul(n);
        }
        self.count += other.count.saturating_mul(n);
        self.sum = self.sum.saturating_add(other.sum.saturating_mul(n));
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        Ok(())
    }

    fn mergeable(&self, other: &Histogram) -> Result<(), MergeError> {
        if self.unit != other.unit {
            return Err(MergeError {
                ours: self.unit,
                theirs: other.unit,
            });
        }
        Ok(())
    }

    /// Inclusive upper bound of the bucket containing quantile `q`
    /// (0..=1), in value units. `None` when empty. The bound overestimates
    /// the true quantile by at most 2× — the honest resolution of a log2
    /// histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i == 0 {
                    self.unit - 1
                } else {
                    self.unit
                        .saturating_mul(1u64 << i.min(63))
                        .saturating_sub(1)
                });
            }
        }
        Some(self.max)
    }

    /// Raw bin counts, for aggregation-state persistence.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Raw sample sum, for aggregation-state persistence.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Raw `(min, max)` fields exactly as stored (`min == u64::MAX` when
    /// empty), for aggregation-state persistence.
    pub fn extremes_raw(&self) -> (u64, u64) {
        (self.min, self.max)
    }

    /// Reassembles a histogram from persisted parts (the exact values the
    /// raw accessors returned — no validation beyond clamping the unit).
    /// This is the decode half of snapshot/resume support; a round trip
    /// through the raw accessors is identity.
    pub fn from_parts(
        unit: u64,
        bins: [u64; Self::BINS],
        count: u64,
        sum: u64,
        (min, max): (u64, u64),
    ) -> Self {
        Histogram {
            unit: unit.max(1),
            bins,
            count,
            sum,
            min,
            max,
        }
    }

    /// Renders non-empty bins as `[lo,hi): count` lines with a bar chart.
    pub fn render(&self, indent: &str) -> String {
        let mut out = String::new();
        if self.count == 0 {
            out.push_str(indent);
            out.push_str("(no samples)\n");
            return out;
        }
        let peak = self.bins.iter().copied().max().unwrap_or(1).max(1);
        for (i, &n) in self.bins.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (lo, hi) = if i == 0 {
                (0u64, 1u64)
            } else {
                (1u64 << (i - 1), 1u64 << i)
            };
            let bar_len = ((n as f64 / peak as f64) * 40.0).ceil() as usize;
            let bar: String = "█".repeat(bar_len);
            out.push_str(&format!("{indent}[{lo:>8}, {hi:>8}) {n:>8}  {bar}\n"));
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Totals carried by a `run_end` event, used to cross-check the ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunEndTotals {
    /// Final tick.
    pub tick: u64,
    /// Reference ledger from the simulator's own accounting.
    pub ledger: EnergyLedger,
    /// Backups performed.
    pub backups: u64,
    /// Restores performed.
    pub restores: u64,
    /// Frames committed.
    pub frames: u64,
    /// Lane-weighted forward progress.
    pub forward_progress: u64,
}

/// Per-run slice of a trace (a trace file may hold several runs, each
/// opened by a `run_start` event).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Label from the run's `run_start` event (empty for an implicit run).
    pub label: String,
    /// Events in this run (including its `run_start`/`run_end`).
    pub events: u64,
    /// Energy ledger summed from this run's events.
    pub ledger: EnergyLedger,
    /// Totals from this run's `run_end` event, if present.
    pub end: Option<RunEndTotals>,
}

impl RunSummary {
    fn new(label: String) -> Self {
        RunSummary {
            label,
            events: 0,
            ledger: EnergyLedger::default(),
            end: None,
        }
    }
}

/// Streaming aggregation of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    counts: [u64; EventKind::COUNT],
    /// Ledger over the whole trace (all runs).
    pub ledger: EnergyLedger,
    /// Histogram of intervals between consecutive backups, in ticks.
    pub inter_backup: Histogram,
    /// Histogram of outage durations, in ticks.
    pub outage_duration: Histogram,
    /// Per-run breakdown, in file order.
    pub runs: Vec<RunSummary>,
    /// Total retention-bit failures across all `retention_decay` events.
    pub retention_failures: u64,
    last_backup_tick: Option<u64>,
}

impl TraceSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        TraceSummary {
            counts: [0; EventKind::COUNT],
            ledger: EnergyLedger::default(),
            inter_backup: Histogram::new(),
            outage_duration: Histogram::new(),
            runs: Vec::new(),
            retention_failures: 0,
            last_backup_tick: None,
        }
    }

    /// Folds one event into the summary.
    pub fn observe(&mut self, ev: &Event) {
        self.counts[ev.kind().index()] += 1;
        self.ledger.observe(ev);
        match ev {
            Event::RunStart { label, .. } => {
                self.runs.push(RunSummary::new(label.clone()));
                self.last_backup_tick = None;
            }
            Event::Backup { tick, .. } => {
                if let Some(prev) = self.last_backup_tick {
                    self.inter_backup.record(tick.saturating_sub(prev));
                }
                self.last_backup_tick = Some(*tick);
            }
            Event::OutageEnd { duration, .. } => {
                self.outage_duration.record(*duration);
            }
            Event::RetentionDecay { failures, .. } => {
                self.retention_failures += failures;
            }
            _ => {}
        }
        // Runs are implicit when the file starts without a run_start.
        if self.runs.is_empty() {
            self.runs.push(RunSummary::new(String::new()));
        }
        let run = self.runs.last_mut().expect("pushed above");
        run.events += 1;
        run.ledger.observe(ev);
        if let Event::RunEnd {
            tick,
            income_nj,
            compute_nj,
            backup_nj,
            restore_nj,
            saved_nj,
            backups,
            restores,
            frames,
            forward_progress,
        } = ev
        {
            run.end = Some(RunEndTotals {
                tick: *tick,
                ledger: EnergyLedger {
                    income_nj: *income_nj,
                    compute_nj: *compute_nj,
                    backup_nj: *backup_nj,
                    restore_nj: *restore_nj,
                    saved_nj: *saved_nj,
                },
                backups: *backups,
                restores: *restores,
                frames: *frames,
                forward_progress: *forward_progress,
            });
        }
    }

    /// Folds another summary into this one, as if its events had been
    /// observed here after ours.
    ///
    /// This is the aggregation step for services: each served run records
    /// into its own `CounterSink`, and the per-run summaries are merged
    /// into one process-wide view (the `nvp-serve` `/metrics` endpoint).
    /// The inter-backup histogram never bridges the seam between the two
    /// summaries — the interval from our last backup to the other's first
    /// belongs to neither run.
    pub fn merge(&mut self, other: &TraceSummary) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        let o = &other.ledger;
        self.ledger.income_nj += o.income_nj;
        self.ledger.compute_nj += o.compute_nj;
        self.ledger.backup_nj += o.backup_nj;
        self.ledger.restore_nj += o.restore_nj;
        self.ledger.saved_nj += o.saved_nj;
        self.inter_backup.merge(&other.inter_backup);
        self.outage_duration.merge(&other.outage_duration);
        self.runs.extend(other.runs.iter().cloned());
        self.retention_failures += other.retention_failures;
        self.last_backup_tick = other.last_backup_tick;
    }

    /// [`merge`](Self::merge) that refuses histogram bucket-unit
    /// mismatches instead of silently misfolding them. Nothing is folded
    /// on error (both histograms are verified before either is touched).
    pub fn checked_merge(&mut self, other: &TraceSummary) -> Result<(), MergeError> {
        self.inter_backup.mergeable(&other.inter_backup)?;
        self.outage_duration.mergeable(&other.outage_duration)?;
        self.merge(other);
        Ok(())
    }

    /// Folds `other` in `n` times over, as if its event stream had been
    /// observed here `n` times: counts, ledger, histograms and retention
    /// failures all scale by `n`. The per-run breakdown is **not**
    /// carried (a weighted fold has no meaningful per-run identity), and
    /// the inter-backup seam never bridges the two summaries. Used for
    /// population aggregation where one simulated device outcome stands
    /// for `n` identical devices. Refuses bucket-unit mismatches.
    pub fn merge_weighted(&mut self, other: &TraceSummary, n: u64) -> Result<(), MergeError> {
        self.inter_backup.mergeable(&other.inter_backup)?;
        self.outage_duration.mergeable(&other.outage_duration)?;
        if n == 0 {
            return Ok(());
        }
        let w = n as f64;
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs.saturating_mul(n);
        }
        let o = &other.ledger;
        self.ledger.income_nj += o.income_nj * w;
        self.ledger.compute_nj += o.compute_nj * w;
        self.ledger.backup_nj += o.backup_nj * w;
        self.ledger.restore_nj += o.restore_nj * w;
        self.ledger.saved_nj += o.saved_nj * w;
        self.inter_backup.merge_weighted(&other.inter_backup, n)?;
        self.outage_duration
            .merge_weighted(&other.outage_duration, n)?;
        self.retention_failures += other.retention_failures.saturating_mul(n);
        Ok(())
    }

    /// Per-kind event counts indexed by [`EventKind::index`], for
    /// aggregation-state persistence.
    pub fn kind_counts(&self) -> &[u64; EventKind::COUNT] {
        &self.counts
    }

    /// Reassembles a summary from persisted aggregate parts. The per-run
    /// breakdown and the inter-backup seam state are not persisted — a
    /// restored summary is an *aggregate* (fold target), not a replayable
    /// event stream.
    pub fn from_parts(
        counts: [u64; EventKind::COUNT],
        ledger: EnergyLedger,
        inter_backup: Histogram,
        outage_duration: Histogram,
        retention_failures: u64,
    ) -> Self {
        TraceSummary {
            counts,
            ledger,
            inter_backup,
            outage_duration,
            runs: Vec::new(),
            retention_failures,
            last_backup_tick: None,
        }
    }

    /// Count of one event kind.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Relative tolerance used by [`reconcile`](Self::reconcile): covers
    /// the subtraction rounding in telescoping income/compute flushes.
    pub const RECONCILE_REL_TOL: f64 = 1e-9;

    /// Cross-checks every run's summed ledger against its `run_end`
    /// totals. Returns the mismatching runs (empty = all reconciled).
    /// Runs without a `run_end` event (truncated traces) are skipped.
    pub fn reconcile(&self) -> Vec<(usize, Vec<LedgerMismatch>)> {
        self.runs
            .iter()
            .enumerate()
            .filter_map(|(i, run)| {
                let end = run.end.as_ref()?;
                let bad = run.ledger.mismatches(&end.ledger, Self::RECONCILE_REL_TOL);
                (!bad.is_empty()).then_some((i, bad))
            })
            .collect()
    }

    /// Reads and folds a whole JSONL stream; returns the events too.
    pub fn from_reader(reader: impl BufRead) -> Result<(Self, Vec<Event>), ReadError> {
        let mut summary = TraceSummary::new();
        let mut events = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| ReadError::Io(lineno + 1, e))?;
            if line.trim().is_empty() {
                continue;
            }
            let ev = Event::from_json(&line).map_err(|e| ReadError::Parse(lineno + 1, e))?;
            summary.observe(&ev);
            events.push(ev);
        }
        Ok((summary, events))
    }
}

impl Default for TraceSummary {
    fn default() -> Self {
        Self::new()
    }
}

/// Error reading a JSONL trace file.
#[derive(Debug)]
pub enum ReadError {
    /// I/O failure at the given 1-based line number.
    Io(usize, std::io::Error),
    /// Malformed event at the given 1-based line number.
    Parse(usize, ParseError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(line, e) => write!(f, "line {line}: {e}"),
            ReadError::Parse(line, e) => write!(f, "line {line}: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let rendered = h.render("  ");
        assert!(rendered.contains('█'), "{rendered}");
        // 1 lands in [1,2), 2..3 in [2,4), 4..7 in [4,8), 8 in [8,16).
        assert!(rendered.contains("[       1,        2)        2"));
        assert!(rendered.contains("[       2,        4)        2"));
    }

    #[test]
    fn empty_histogram_renders_placeholder() {
        assert!(Histogram::new().render("").contains("no samples"));
        assert_eq!(Histogram::new().min(), None);
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    fn backup(tick: u64, cost: f64) -> Event {
        Event::Backup {
            tick,
            cost_nj: cost,
            saved_nj: 1.0,
            live_fraction: 1.0,
            bits: 8,
        }
    }

    #[test]
    fn ledger_sums_and_reconciles() {
        let mut s = TraceSummary::new();
        s.observe(&Event::RunStart {
            tick: 0,
            label: "x".into(),
        });
        s.observe(&backup(100, 10.0));
        s.observe(&backup(150, 12.0));
        s.observe(&Event::Restore {
            tick: 200,
            cost_nj: 3.0,
            outage_ticks: 50,
            rolled_forward: false,
            cold: false,
        });
        s.observe(&Event::EnergyFlush {
            tick: 200,
            income_nj: 40.0,
            compute_nj: 25.0,
        });
        s.observe(&Event::RunEnd {
            tick: 300,
            income_nj: 40.0,
            compute_nj: 25.0,
            backup_nj: 22.0,
            restore_nj: 3.0,
            saved_nj: 2.0,
            backups: 2,
            restores: 1,
            frames: 0,
            forward_progress: 0,
        });
        assert_eq!(s.count(EventKind::Backup), 2);
        assert_eq!(s.inter_backup.count(), 1); // one 50-tick gap
        assert_eq!(s.ledger.backup_nj, 22.0);
        assert!(s.reconcile().is_empty(), "{:?}", s.reconcile());
    }

    #[test]
    fn reconcile_flags_a_hole() {
        let mut s = TraceSummary::new();
        s.observe(&backup(10, 5.0));
        // run_end claims 9 nJ of backups, but events only account for 5.
        s.observe(&Event::RunEnd {
            tick: 20,
            income_nj: 0.0,
            compute_nj: 0.0,
            backup_nj: 9.0,
            restore_nj: 0.0,
            saved_nj: 1.0,
            backups: 2,
            restores: 0,
            frames: 0,
            forward_progress: 0,
        });
        let bad = s.reconcile();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].1[0].field, "backup_nj");
    }

    #[test]
    fn multiple_runs_split_on_run_start() {
        let mut s = TraceSummary::new();
        for run in 0..3 {
            s.observe(&Event::RunStart {
                tick: 0,
                label: format!("run{run}"),
            });
            s.observe(&backup(5, 1.0));
        }
        assert_eq!(s.runs.len(), 3);
        assert_eq!(s.runs[2].label, "run2");
        for run in &s.runs {
            assert_eq!(run.events, 2);
            assert_eq!(run.ledger.backup_nj, 1.0);
        }
        // Inter-backup gaps never span a run boundary.
        assert_eq!(s.inter_backup.count(), 0);
    }

    #[test]
    fn merge_equals_sequential_observation() {
        // Observing one run per summary and merging must agree with
        // observing both runs into a single summary.
        let run = |label: &str, t0: u64| {
            vec![
                Event::RunStart {
                    tick: t0,
                    label: label.into(),
                },
                backup(t0 + 100, 10.0),
                backup(t0 + 160, 12.0),
                Event::OutageEnd {
                    tick: t0 + 200,
                    duration: 40,
                },
                Event::RetentionDecay {
                    tick: t0 + 200,
                    bit: 0,
                    failures: 3,
                },
            ]
        };
        let (ra, rb) = (run("a", 0), run("b", 1000));
        let mut merged = TraceSummary::new();
        let mut part_b = TraceSummary::new();
        let mut whole = TraceSummary::new();
        for ev in &ra {
            merged.observe(ev);
            whole.observe(ev);
        }
        for ev in &rb {
            part_b.observe(ev);
            whole.observe(ev);
        }
        merged.merge(&part_b);
        assert_eq!(merged.total(), whole.total());
        assert_eq!(merged.ledger, whole.ledger);
        assert_eq!(merged.outage_duration, whole.outage_duration);
        assert_eq!(merged.retention_failures, whole.retention_failures);
        assert_eq!(merged.runs, whole.runs);
        assert_eq!(merged.count(EventKind::Backup), 4);
        // One intra-run interval per run; neither path counts a cross-run
        // seam (RunStart resets the interval clock).
        assert_eq!(merged.inter_backup, whole.inter_backup);
        assert_eq!(merged.inter_backup.count(), 2);
    }

    #[test]
    fn histogram_merge_combines_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(4);
        b.record(1);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(1000));
        assert!((a.mean() - 335.0).abs() < 1e-9);
        let empty = Histogram::new();
        let before = a.clone();
        a.merge(&empty);
        assert_eq!(a, before, "merging an empty histogram is a no-op");
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut weighted = Histogram::with_unit(10);
        let mut repeated = Histogram::with_unit(10);
        for v in [0, 9, 10, 25, 4000] {
            weighted.record_n(v, 3);
            for _ in 0..3 {
                repeated.record(v);
            }
        }
        assert_eq!(weighted, repeated);
        let before = weighted.clone();
        weighted.record_n(77, 0);
        assert_eq!(weighted, before, "zero-weight record is a no-op");
    }

    #[test]
    fn checked_merge_rejects_unit_mismatch() {
        let mut fine = Histogram::with_unit(1);
        let mut coarse = Histogram::with_unit(100);
        fine.record(3);
        coarse.record(300);
        let err = fine.checked_merge(&coarse).unwrap_err();
        assert_eq!(
            err,
            MergeError {
                ours: 1,
                theirs: 100
            }
        );
        assert!(err.to_string().contains("bucket units differ"));
        // Nothing was folded on the failure path.
        assert_eq!(fine.count(), 1);
        let mut same = Histogram::with_unit(100);
        same.record(5000);
        coarse.checked_merge(&same).unwrap();
        assert_eq!(coarse.count(), 2);
    }

    #[test]
    fn histogram_merge_weighted_scales_counts() {
        let mut base = Histogram::with_unit(2);
        base.record(6);
        let mut other = Histogram::with_unit(2);
        other.record(1);
        other.record(40);
        base.merge_weighted(&other, 5).unwrap();
        assert_eq!(base.count(), 11);
        assert_eq!(base.min(), Some(1));
        assert_eq!(base.max(), Some(40));
        assert_eq!(base.sum(), 6 + 5 * 41);
        // n = 1 is exactly a checked merge.
        let mut a = Histogram::new();
        a.record(9);
        let mut b = a.clone();
        let mut add = Histogram::new();
        add.record(17);
        a.checked_merge(&add).unwrap();
        b.merge_weighted(&add, 1).unwrap();
        assert_eq!(a, b);
        // n = 0 still validates compatibility but folds nothing.
        let before = a.clone();
        a.merge_weighted(&add, 0).unwrap();
        assert_eq!(a, before);
        assert!(a.merge_weighted(&Histogram::with_unit(7), 0).is_err());
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        assert_eq!(Histogram::new().quantile(0.5), None);
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        // Ranks 1..=4 land in bins [1,2), [2,4), [2,4), [64,128): the
        // quantile is the inclusive upper bound of the covering bucket.
        assert_eq!(h.quantile(0.25), Some(1));
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(0.75), Some(3));
        assert_eq!(h.quantile(1.0), Some(127));
        // Unit scaling widens every bucket by the unit.
        let mut u = Histogram::with_unit(1000);
        u.record(500);
        u.record(2500);
        assert_eq!(u.quantile(0.5), Some(999));
        assert_eq!(u.quantile(1.0), Some(3999));
    }

    #[test]
    fn histogram_from_parts_round_trips() {
        let mut h = Histogram::with_unit(4);
        for v in [0, 3, 9, 250, 7777] {
            h.record_n(v, v + 1);
        }
        let mut bins = [0u64; Histogram::BINS];
        bins.copy_from_slice(h.bins());
        let rebuilt = Histogram::from_parts(h.unit(), bins, h.count(), h.sum(), h.extremes_raw());
        assert_eq!(rebuilt, h);
        assert_eq!(
            Histogram::from_parts(1, [0; Histogram::BINS], 0, 0, (u64::MAX, 0)).min(),
            None
        );
    }

    #[test]
    fn summary_checked_merge_guards_both_histograms() {
        let mut a = TraceSummary::new();
        a.observe(&backup(10, 1.0));
        let mut b = TraceSummary::new();
        b.observe(&backup(20, 2.0));
        a.checked_merge(&b).unwrap();
        assert_eq!(a.count(EventKind::Backup), 2);
        // A summary rebuilt with mismatched units must be refused whole.
        let odd = TraceSummary::from_parts(
            [0; EventKind::COUNT],
            EnergyLedger::default(),
            Histogram::new(),
            Histogram::with_unit(50),
            0,
        );
        let before = a.clone();
        assert!(a.checked_merge(&odd).is_err());
        assert_eq!(a, before, "failed merge must fold nothing");
    }

    #[test]
    fn summary_merge_weighted_matches_n_plain_merges() {
        let mut src = TraceSummary::new();
        src.observe(&Event::RunStart {
            tick: 0,
            label: "w".into(),
        });
        src.observe(&backup(100, 10.0));
        src.observe(&backup(160, 12.0));
        src.observe(&Event::OutageEnd {
            tick: 200,
            duration: 40,
        });
        src.observe(&Event::RetentionDecay {
            tick: 200,
            bit: 1,
            failures: 2,
        });
        let mut plain = TraceSummary::new();
        for _ in 0..3 {
            plain.merge(&src);
        }
        let mut weighted = TraceSummary::new();
        weighted.merge_weighted(&src, 3).unwrap();
        assert_eq!(weighted.kind_counts(), plain.kind_counts());
        assert_eq!(weighted.ledger, plain.ledger);
        assert_eq!(weighted.inter_backup, plain.inter_backup);
        assert_eq!(weighted.outage_duration, plain.outage_duration);
        assert_eq!(weighted.retention_failures, plain.retention_failures);
        assert!(weighted.runs.is_empty(), "weighted folds carry no runs");
        // Zero weight folds nothing.
        let before = weighted.clone();
        weighted.merge_weighted(&src, 0).unwrap();
        assert_eq!(weighted, before);
    }

    #[test]
    fn summary_from_parts_rebuilds_aggregate() {
        let mut src = TraceSummary::new();
        src.observe(&backup(10, 4.0));
        src.observe(&Event::OutageEnd {
            tick: 50,
            duration: 9,
        });
        let rebuilt = TraceSummary::from_parts(
            *src.kind_counts(),
            src.ledger,
            src.inter_backup.clone(),
            src.outage_duration.clone(),
            src.retention_failures,
        );
        assert_eq!(rebuilt.kind_counts(), src.kind_counts());
        assert_eq!(rebuilt.ledger, src.ledger);
        assert_eq!(rebuilt.outage_duration, src.outage_duration);
        assert_eq!(rebuilt.total(), src.total());
    }

    #[test]
    fn from_reader_parses_jsonl() {
        let text = format!(
            "{}\n\n{}\n",
            Event::RunStart {
                tick: 0,
                label: "r".into()
            }
            .to_json(),
            backup(9, 2.5).to_json()
        );
        let (summary, events) = TraceSummary::from_reader(std::io::Cursor::new(text)).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(summary.total(), 2);
        let err = TraceSummary::from_reader(std::io::Cursor::new("{bad")).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
