//! Aggregation: per-kind counts, interval histograms and the energy ledger.
//!
//! A [`TraceSummary`] folds a stream of events into constant-size metrics:
//! how many of each kind, power-of-two histograms of inter-backup intervals
//! and outage durations, and an [`EnergyLedger`] summing the per-event
//! energy deltas. The ledger is the trace's self-check: summed deltas must
//! reconcile with the simulator's own `RunReport` totals (carried in the
//! `run_end` event), or the instrumentation has a hole in it.

use crate::event::{Event, EventKind, ParseError};
use std::fmt;
use std::io::BufRead;

/// Summed per-event energy deltas, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyLedger {
    /// Harvested income (from `energy_flush` events).
    pub income_nj: f64,
    /// Compute spend (from `energy_flush` events).
    pub compute_nj: f64,
    /// Backup spend (from `backup` events).
    pub backup_nj: f64,
    /// Restore spend (from `restore` events).
    pub restore_nj: f64,
    /// Backup energy avoided by live-only scoping (from `backup` events).
    pub saved_nj: f64,
}

impl EnergyLedger {
    /// Folds one event's energy contribution into the ledger.
    pub fn observe(&mut self, ev: &Event) {
        match ev {
            Event::EnergyFlush {
                income_nj,
                compute_nj,
                ..
            } => {
                self.income_nj += income_nj;
                self.compute_nj += compute_nj;
            }
            Event::Backup {
                cost_nj, saved_nj, ..
            } => {
                self.backup_nj += cost_nj;
                self.saved_nj += saved_nj;
            }
            Event::Restore { cost_nj, .. } => self.restore_nj += cost_nj,
            _ => {}
        }
    }

    /// Checks this ledger against reference totals within a relative
    /// tolerance, returning the per-field mismatches (empty = reconciled).
    ///
    /// Backup/restore sums are bit-exact (same addition order as the
    /// simulator); income/compute are telescoping flush deltas, so they can
    /// differ from the reference by a few ulps of subtraction rounding —
    /// the default tolerance in [`TraceSummary::reconcile`] allows for
    /// that and nothing more.
    pub fn mismatches(&self, reference: &EnergyLedger, rel_tol: f64) -> Vec<LedgerMismatch> {
        let fields = [
            ("income_nj", self.income_nj, reference.income_nj),
            ("compute_nj", self.compute_nj, reference.compute_nj),
            ("backup_nj", self.backup_nj, reference.backup_nj),
            ("restore_nj", self.restore_nj, reference.restore_nj),
            ("saved_nj", self.saved_nj, reference.saved_nj),
        ];
        fields
            .into_iter()
            .filter(|&(_, got, want)| {
                let scale = want.abs().max(got.abs()).max(1.0);
                (got - want).abs() > rel_tol * scale
            })
            .map(|(field, got, want)| LedgerMismatch {
                field,
                ledger_nj: got,
                reference_nj: want,
            })
            .collect()
    }
}

/// One field where the ledger and the reference totals disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerMismatch {
    /// Ledger field name.
    pub field: &'static str,
    /// Value summed from events, nJ.
    pub ledger_nj: f64,
    /// Value the `run_end` event reported, nJ.
    pub reference_nj: f64,
}

impl fmt::Display for LedgerMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: ledger {:.6} nJ vs run_end {:.6} nJ (delta {:+.6})",
            self.field,
            self.ledger_nj,
            self.reference_nj,
            self.ledger_nj - self.reference_nj
        )
    }
}

/// Power-of-two-binned histogram of tick counts.
///
/// Bin `i` holds samples in `[2^(i-1), 2^i)` ticks, with bin 0 holding the
/// value 0. Good enough resolution for outage durations spanning 1 tick to
/// minutes, in 32 fixed bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: [u64; Self::BINS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    const BINS: usize = 32;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            bins: [0; Self::BINS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bin = if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(Self::BINS - 1)
        };
        self.bins[bin] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (None if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (None if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Folds another histogram into this one (bin-wise sum; min/max/mean
    /// combine as if every sample had been recorded here).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.bins.iter_mut().zip(other.bins.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Renders non-empty bins as `[lo,hi): count` lines with a bar chart.
    pub fn render(&self, indent: &str) -> String {
        let mut out = String::new();
        if self.count == 0 {
            out.push_str(indent);
            out.push_str("(no samples)\n");
            return out;
        }
        let peak = self.bins.iter().copied().max().unwrap_or(1).max(1);
        for (i, &n) in self.bins.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (lo, hi) = if i == 0 {
                (0u64, 1u64)
            } else {
                (1u64 << (i - 1), 1u64 << i)
            };
            let bar_len = ((n as f64 / peak as f64) * 40.0).ceil() as usize;
            let bar: String = "█".repeat(bar_len);
            out.push_str(&format!("{indent}[{lo:>8}, {hi:>8}) {n:>8}  {bar}\n"));
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Totals carried by a `run_end` event, used to cross-check the ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunEndTotals {
    /// Final tick.
    pub tick: u64,
    /// Reference ledger from the simulator's own accounting.
    pub ledger: EnergyLedger,
    /// Backups performed.
    pub backups: u64,
    /// Restores performed.
    pub restores: u64,
    /// Frames committed.
    pub frames: u64,
    /// Lane-weighted forward progress.
    pub forward_progress: u64,
}

/// Per-run slice of a trace (a trace file may hold several runs, each
/// opened by a `run_start` event).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Label from the run's `run_start` event (empty for an implicit run).
    pub label: String,
    /// Events in this run (including its `run_start`/`run_end`).
    pub events: u64,
    /// Energy ledger summed from this run's events.
    pub ledger: EnergyLedger,
    /// Totals from this run's `run_end` event, if present.
    pub end: Option<RunEndTotals>,
}

impl RunSummary {
    fn new(label: String) -> Self {
        RunSummary {
            label,
            events: 0,
            ledger: EnergyLedger::default(),
            end: None,
        }
    }
}

/// Streaming aggregation of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    counts: [u64; EventKind::COUNT],
    /// Ledger over the whole trace (all runs).
    pub ledger: EnergyLedger,
    /// Histogram of intervals between consecutive backups, in ticks.
    pub inter_backup: Histogram,
    /// Histogram of outage durations, in ticks.
    pub outage_duration: Histogram,
    /// Per-run breakdown, in file order.
    pub runs: Vec<RunSummary>,
    /// Total retention-bit failures across all `retention_decay` events.
    pub retention_failures: u64,
    last_backup_tick: Option<u64>,
}

impl TraceSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        TraceSummary {
            counts: [0; EventKind::COUNT],
            ledger: EnergyLedger::default(),
            inter_backup: Histogram::new(),
            outage_duration: Histogram::new(),
            runs: Vec::new(),
            retention_failures: 0,
            last_backup_tick: None,
        }
    }

    /// Folds one event into the summary.
    pub fn observe(&mut self, ev: &Event) {
        self.counts[ev.kind().index()] += 1;
        self.ledger.observe(ev);
        match ev {
            Event::RunStart { label, .. } => {
                self.runs.push(RunSummary::new(label.clone()));
                self.last_backup_tick = None;
            }
            Event::Backup { tick, .. } => {
                if let Some(prev) = self.last_backup_tick {
                    self.inter_backup.record(tick.saturating_sub(prev));
                }
                self.last_backup_tick = Some(*tick);
            }
            Event::OutageEnd { duration, .. } => {
                self.outage_duration.record(*duration);
            }
            Event::RetentionDecay { failures, .. } => {
                self.retention_failures += failures;
            }
            _ => {}
        }
        // Runs are implicit when the file starts without a run_start.
        if self.runs.is_empty() {
            self.runs.push(RunSummary::new(String::new()));
        }
        let run = self.runs.last_mut().expect("pushed above");
        run.events += 1;
        run.ledger.observe(ev);
        if let Event::RunEnd {
            tick,
            income_nj,
            compute_nj,
            backup_nj,
            restore_nj,
            saved_nj,
            backups,
            restores,
            frames,
            forward_progress,
        } = ev
        {
            run.end = Some(RunEndTotals {
                tick: *tick,
                ledger: EnergyLedger {
                    income_nj: *income_nj,
                    compute_nj: *compute_nj,
                    backup_nj: *backup_nj,
                    restore_nj: *restore_nj,
                    saved_nj: *saved_nj,
                },
                backups: *backups,
                restores: *restores,
                frames: *frames,
                forward_progress: *forward_progress,
            });
        }
    }

    /// Folds another summary into this one, as if its events had been
    /// observed here after ours.
    ///
    /// This is the aggregation step for services: each served run records
    /// into its own `CounterSink`, and the per-run summaries are merged
    /// into one process-wide view (the `nvp-serve` `/metrics` endpoint).
    /// The inter-backup histogram never bridges the seam between the two
    /// summaries — the interval from our last backup to the other's first
    /// belongs to neither run.
    pub fn merge(&mut self, other: &TraceSummary) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        let o = &other.ledger;
        self.ledger.income_nj += o.income_nj;
        self.ledger.compute_nj += o.compute_nj;
        self.ledger.backup_nj += o.backup_nj;
        self.ledger.restore_nj += o.restore_nj;
        self.ledger.saved_nj += o.saved_nj;
        self.inter_backup.merge(&other.inter_backup);
        self.outage_duration.merge(&other.outage_duration);
        self.runs.extend(other.runs.iter().cloned());
        self.retention_failures += other.retention_failures;
        self.last_backup_tick = other.last_backup_tick;
    }

    /// Count of one event kind.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Relative tolerance used by [`reconcile`](Self::reconcile): covers
    /// the subtraction rounding in telescoping income/compute flushes.
    pub const RECONCILE_REL_TOL: f64 = 1e-9;

    /// Cross-checks every run's summed ledger against its `run_end`
    /// totals. Returns the mismatching runs (empty = all reconciled).
    /// Runs without a `run_end` event (truncated traces) are skipped.
    pub fn reconcile(&self) -> Vec<(usize, Vec<LedgerMismatch>)> {
        self.runs
            .iter()
            .enumerate()
            .filter_map(|(i, run)| {
                let end = run.end.as_ref()?;
                let bad = run.ledger.mismatches(&end.ledger, Self::RECONCILE_REL_TOL);
                (!bad.is_empty()).then_some((i, bad))
            })
            .collect()
    }

    /// Reads and folds a whole JSONL stream; returns the events too.
    pub fn from_reader(reader: impl BufRead) -> Result<(Self, Vec<Event>), ReadError> {
        let mut summary = TraceSummary::new();
        let mut events = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| ReadError::Io(lineno + 1, e))?;
            if line.trim().is_empty() {
                continue;
            }
            let ev = Event::from_json(&line).map_err(|e| ReadError::Parse(lineno + 1, e))?;
            summary.observe(&ev);
            events.push(ev);
        }
        Ok((summary, events))
    }
}

impl Default for TraceSummary {
    fn default() -> Self {
        Self::new()
    }
}

/// Error reading a JSONL trace file.
#[derive(Debug)]
pub enum ReadError {
    /// I/O failure at the given 1-based line number.
    Io(usize, std::io::Error),
    /// Malformed event at the given 1-based line number.
    Parse(usize, ParseError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(line, e) => write!(f, "line {line}: {e}"),
            ReadError::Parse(line, e) => write!(f, "line {line}: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let rendered = h.render("  ");
        assert!(rendered.contains('█'), "{rendered}");
        // 1 lands in [1,2), 2..3 in [2,4), 4..7 in [4,8), 8 in [8,16).
        assert!(rendered.contains("[       1,        2)        2"));
        assert!(rendered.contains("[       2,        4)        2"));
    }

    #[test]
    fn empty_histogram_renders_placeholder() {
        assert!(Histogram::new().render("").contains("no samples"));
        assert_eq!(Histogram::new().min(), None);
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    fn backup(tick: u64, cost: f64) -> Event {
        Event::Backup {
            tick,
            cost_nj: cost,
            saved_nj: 1.0,
            live_fraction: 1.0,
            bits: 8,
        }
    }

    #[test]
    fn ledger_sums_and_reconciles() {
        let mut s = TraceSummary::new();
        s.observe(&Event::RunStart {
            tick: 0,
            label: "x".into(),
        });
        s.observe(&backup(100, 10.0));
        s.observe(&backup(150, 12.0));
        s.observe(&Event::Restore {
            tick: 200,
            cost_nj: 3.0,
            outage_ticks: 50,
            rolled_forward: false,
            cold: false,
        });
        s.observe(&Event::EnergyFlush {
            tick: 200,
            income_nj: 40.0,
            compute_nj: 25.0,
        });
        s.observe(&Event::RunEnd {
            tick: 300,
            income_nj: 40.0,
            compute_nj: 25.0,
            backup_nj: 22.0,
            restore_nj: 3.0,
            saved_nj: 2.0,
            backups: 2,
            restores: 1,
            frames: 0,
            forward_progress: 0,
        });
        assert_eq!(s.count(EventKind::Backup), 2);
        assert_eq!(s.inter_backup.count(), 1); // one 50-tick gap
        assert_eq!(s.ledger.backup_nj, 22.0);
        assert!(s.reconcile().is_empty(), "{:?}", s.reconcile());
    }

    #[test]
    fn reconcile_flags_a_hole() {
        let mut s = TraceSummary::new();
        s.observe(&backup(10, 5.0));
        // run_end claims 9 nJ of backups, but events only account for 5.
        s.observe(&Event::RunEnd {
            tick: 20,
            income_nj: 0.0,
            compute_nj: 0.0,
            backup_nj: 9.0,
            restore_nj: 0.0,
            saved_nj: 1.0,
            backups: 2,
            restores: 0,
            frames: 0,
            forward_progress: 0,
        });
        let bad = s.reconcile();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].1[0].field, "backup_nj");
    }

    #[test]
    fn multiple_runs_split_on_run_start() {
        let mut s = TraceSummary::new();
        for run in 0..3 {
            s.observe(&Event::RunStart {
                tick: 0,
                label: format!("run{run}"),
            });
            s.observe(&backup(5, 1.0));
        }
        assert_eq!(s.runs.len(), 3);
        assert_eq!(s.runs[2].label, "run2");
        for run in &s.runs {
            assert_eq!(run.events, 2);
            assert_eq!(run.ledger.backup_nj, 1.0);
        }
        // Inter-backup gaps never span a run boundary.
        assert_eq!(s.inter_backup.count(), 0);
    }

    #[test]
    fn merge_equals_sequential_observation() {
        // Observing one run per summary and merging must agree with
        // observing both runs into a single summary.
        let run = |label: &str, t0: u64| {
            vec![
                Event::RunStart {
                    tick: t0,
                    label: label.into(),
                },
                backup(t0 + 100, 10.0),
                backup(t0 + 160, 12.0),
                Event::OutageEnd {
                    tick: t0 + 200,
                    duration: 40,
                },
                Event::RetentionDecay {
                    tick: t0 + 200,
                    bit: 0,
                    failures: 3,
                },
            ]
        };
        let (ra, rb) = (run("a", 0), run("b", 1000));
        let mut merged = TraceSummary::new();
        let mut part_b = TraceSummary::new();
        let mut whole = TraceSummary::new();
        for ev in &ra {
            merged.observe(ev);
            whole.observe(ev);
        }
        for ev in &rb {
            part_b.observe(ev);
            whole.observe(ev);
        }
        merged.merge(&part_b);
        assert_eq!(merged.total(), whole.total());
        assert_eq!(merged.ledger, whole.ledger);
        assert_eq!(merged.outage_duration, whole.outage_duration);
        assert_eq!(merged.retention_failures, whole.retention_failures);
        assert_eq!(merged.runs, whole.runs);
        assert_eq!(merged.count(EventKind::Backup), 4);
        // One intra-run interval per run; neither path counts a cross-run
        // seam (RunStart resets the interval clock).
        assert_eq!(merged.inter_backup, whole.inter_backup);
        assert_eq!(merged.inter_backup.count(), 2);
    }

    #[test]
    fn histogram_merge_combines_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(4);
        b.record(1);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(1000));
        assert!((a.mean() - 335.0).abs() < 1e-9);
        let empty = Histogram::new();
        let before = a.clone();
        a.merge(&empty);
        assert_eq!(a, before, "merging an empty histogram is a no-op");
    }

    #[test]
    fn from_reader_parses_jsonl() {
        let text = format!(
            "{}\n\n{}\n",
            Event::RunStart {
                tick: 0,
                label: "r".into()
            }
            .to_json(),
            backup(9, 2.5).to_json()
        );
        let (summary, events) = TraceSummary::from_reader(std::io::Cursor::new(text)).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(summary.total(), 2);
        let err = TraceSummary::from_reader(std::io::Cursor::new("{bad")).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
