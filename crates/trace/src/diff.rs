//! Trace diffing: localize where two configurations diverge.
//!
//! Two runs of the simulator with slightly different configs produce
//! traces that agree for a prefix and then fork. [`diff`] reports three
//! levels of comparison, cheapest first: per-kind count deltas, energy
//! ledger deltas, and the first index where the event streams differ —
//! both as kind sequences (robust to float jitter) and as full events.

use crate::event::{Event, EventKind};
use crate::summary::TraceSummary;
use std::fmt;

/// The result of comparing two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Kinds whose counts differ: (kind, count in A, count in B).
    pub count_deltas: Vec<(EventKind, u64, u64)>,
    /// Ledger fields that differ: (field, A nJ, B nJ).
    pub ledger_deltas: Vec<(&'static str, f64, f64)>,
    /// First index where the *kind sequences* differ, with the kinds seen
    /// (`None` = past the end of that trace).
    pub first_kind_divergence: Option<(usize, Option<EventKind>, Option<EventKind>)>,
    /// First index where the full events differ (field-level comparison),
    /// with both events rendered as JSON.
    pub first_event_divergence: Option<(usize, Option<String>, Option<String>)>,
    /// Lengths of the two traces.
    pub lens: (usize, usize),
}

impl TraceDiff {
    /// True when the traces are event-for-event identical.
    pub fn identical(&self) -> bool {
        self.first_event_divergence.is_none() && self.lens.0 == self.lens.1
    }
}

/// Compares two event streams.
pub fn diff(a: &[Event], b: &[Event]) -> TraceDiff {
    let mut sa = TraceSummary::new();
    let mut sb = TraceSummary::new();
    for ev in a {
        sa.observe(ev);
    }
    for ev in b {
        sb.observe(ev);
    }

    let count_deltas = EventKind::ALL
        .iter()
        .copied()
        .filter(|&k| sa.count(k) != sb.count(k))
        .map(|k| (k, sa.count(k), sb.count(k)))
        .collect();

    let fields = [
        ("income_nj", sa.ledger.income_nj, sb.ledger.income_nj),
        ("compute_nj", sa.ledger.compute_nj, sb.ledger.compute_nj),
        ("backup_nj", sa.ledger.backup_nj, sb.ledger.backup_nj),
        ("restore_nj", sa.ledger.restore_nj, sb.ledger.restore_nj),
        ("saved_nj", sa.ledger.saved_nj, sb.ledger.saved_nj),
    ];
    let ledger_deltas = fields.into_iter().filter(|&(_, x, y)| x != y).collect();

    let mut first_kind_divergence = None;
    let mut first_event_divergence = None;
    let n = a.len().max(b.len());
    for i in 0..n {
        let (ea, eb) = (a.get(i), b.get(i));
        if first_kind_divergence.is_none() && ea.map(Event::kind) != eb.map(Event::kind) {
            first_kind_divergence = Some((i, ea.map(Event::kind), eb.map(Event::kind)));
        }
        if ea != eb {
            first_event_divergence = Some((i, ea.map(Event::to_json), eb.map(Event::to_json)));
            break;
        }
    }

    TraceDiff {
        count_deltas,
        ledger_deltas,
        first_kind_divergence,
        first_event_divergence,
        lens: (a.len(), b.len()),
    }
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.identical() {
            return writeln!(f, "traces identical ({} events)", self.lens.0);
        }
        writeln!(
            f,
            "traces differ: A has {} events, B has {}",
            self.lens.0, self.lens.1
        )?;
        if !self.count_deltas.is_empty() {
            writeln!(f, "event-count deltas:")?;
            for (kind, ca, cb) in &self.count_deltas {
                writeln!(
                    f,
                    "  {:<18} A {:>8}  B {:>8}  ({:+})",
                    kind.name(),
                    ca,
                    cb,
                    *cb as i64 - *ca as i64
                )?;
            }
        }
        if !self.ledger_deltas.is_empty() {
            writeln!(f, "energy-ledger deltas:")?;
            for (field, x, y) in &self.ledger_deltas {
                writeln!(
                    f,
                    "  {:<12} A {:>16.4} nJ  B {:>16.4} nJ  ({:+.4})",
                    field,
                    x,
                    y,
                    y - x
                )?;
            }
        }
        if let Some((i, ka, kb)) = &self.first_kind_divergence {
            let name = |k: &Option<EventKind>| k.map(|k| k.name()).unwrap_or("<end of trace>");
            writeln!(
                f,
                "first kind divergence at event {i}: A={} B={}",
                name(ka),
                name(kb)
            )?;
        }
        if let Some((i, ea, eb)) = &self.first_event_divergence {
            writeln!(f, "first event divergence at event {i}:")?;
            writeln!(f, "  A: {}", ea.as_deref().unwrap_or("<end of trace>"))?;
            writeln!(f, "  B: {}", eb.as_deref().unwrap_or("<end of trace>"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backup(tick: u64, cost: f64) -> Event {
        Event::Backup {
            tick,
            cost_nj: cost,
            saved_nj: 0.0,
            live_fraction: 1.0,
            bits: 8,
        }
    }

    #[test]
    fn identical_traces() {
        let evs = vec![backup(1, 2.0), Event::OutageStart { tick: 2 }];
        let d = diff(&evs, &evs.clone());
        assert!(d.identical());
        assert!(d.count_deltas.is_empty());
        assert!(d.to_string().contains("identical"));
    }

    #[test]
    fn field_jitter_is_event_divergence_but_not_kind_divergence() {
        let a = vec![backup(1, 2.0), backup(5, 2.0)];
        let b = vec![backup(1, 2.0), backup(5, 2.5)];
        let d = diff(&a, &b);
        assert!(!d.identical());
        // Same kinds throughout.
        assert_eq!(d.first_kind_divergence, None);
        // But event 1 differs in cost.
        assert_eq!(d.first_event_divergence.as_ref().unwrap().0, 1);
        assert_eq!(d.ledger_deltas.len(), 1);
        assert_eq!(d.ledger_deltas[0].0, "backup_nj");
    }

    #[test]
    fn structural_divergence_reports_kinds_and_counts() {
        let a = vec![backup(1, 2.0), Event::OutageStart { tick: 2 }];
        let b = vec![backup(1, 2.0)];
        let d = diff(&a, &b);
        let (i, ka, kb) = d.first_kind_divergence.unwrap();
        assert_eq!(i, 1);
        assert_eq!(ka, Some(EventKind::OutageStart));
        assert_eq!(kb, None);
        assert_eq!(d.count_deltas, vec![(EventKind::OutageStart, 1, 0)]);
        assert!(d.to_string().contains("end of trace"));
    }
}
