//! End-to-end tests of the running service over real sockets.
//!
//! Each test boots a server on an ephemeral port (`port: 0`), drives it
//! with the same minimal HTTP client the load generator uses, and shuts
//! it down through `POST /shutdown` — the same code path SIGTERM trips,
//! so the drain logic is exercised without sending signals.

use nvp_serve::bench::{http_request, shutdown_local_server, spawn_local_server, Exchange};
use nvp_serve::server::ServerConfig;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

fn small_server() -> (SocketAddr, thread::JoinHandle<()>) {
    spawn_local_server(ServerConfig {
        read_deadline: Duration::from_millis(300),
        max_body: 4 * 1024,
        ..ServerConfig::default()
    })
}

fn post_run(addr: SocketAddr, body: &str) -> Exchange {
    http_request(addr, "POST", "/v1/run", body).expect("request")
}

const FAST_RUN: &str = r#"{"kernel":"sobel","img":8,"frames":1,"seconds":0.2}"#;

#[test]
fn health_kernels_and_metrics_respond() {
    let (addr, handle) = small_server();
    let health = http_request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"ok\n");

    let kernels = http_request(addr, "GET", "/v1/kernels", "").unwrap();
    assert_eq!(kernels.status, 200);
    let text = String::from_utf8(kernels.body).unwrap();
    assert!(text.contains("\"sobel\""), "{text}");
    assert!(
        text.contains("\"FFT\"") && text.contains("\"median\""),
        "{text}"
    );

    let metrics = http_request(addr, "GET", "/metrics", "").unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(text.contains("nvp_requests_total"), "{text}");
    assert!(text.contains("nvp_cache_entries"), "{text}");

    shutdown_local_server(addr, handle);
}

#[test]
fn run_roundtrip_and_cache_hit_bytes_match() {
    let (addr, handle) = small_server();

    let first = post_run(addr, FAST_RUN);
    assert_eq!(
        first.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&first.body)
    );
    assert_eq!(
        first.headers.get("x-cache").map(String::as_str),
        Some("miss")
    );
    let text = String::from_utf8(first.body.clone()).unwrap();
    assert!(text.contains("\"forward_progress\""), "{text}");
    assert!(text.contains("\"energy_nj\""), "{text}");

    // Same request, different spelling: must be a hit with identical bytes.
    let respelled = r#"{"seconds":0.20,"frames":1,"img":8,"kernel":"Sobel"}"#;
    let second = post_run(addr, respelled);
    assert_eq!(second.status, 200);
    assert_eq!(
        second.headers.get("x-cache").map(String::as_str),
        Some("hit")
    );
    assert_eq!(
        second.body, first.body,
        "cached body must be byte-identical"
    );

    shutdown_local_server(addr, handle);
}

#[test]
fn sixteen_concurrent_clients_one_simulation_identical_bodies() {
    let (addr, handle) = small_server();

    let clients: Vec<_> = (0..16)
        .map(|_| thread::spawn(move || post_run(addr, FAST_RUN)))
        .collect();
    let exchanges: Vec<Exchange> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let first_body = &exchanges[0].body;
    for ex in &exchanges {
        assert_eq!(ex.status, 200);
        assert_eq!(&ex.body, first_body, "all 16 bodies must be byte-identical");
    }

    // The service must have simulated exactly once: every response was a
    // miss (the leader), a coalesced join, or a post-completion hit.
    let metrics = http_request(addr, "GET", "/metrics", "").unwrap();
    let text = String::from_utf8(metrics.body).unwrap();
    let counter = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {name} in {text}"))
    };
    assert_eq!(counter("nvp_simulations_total"), 1, "metrics:\n{text}");
    assert_eq!(counter("nvp_cache_misses_total"), 1);
    assert_eq!(
        counter("nvp_cache_hits_total") + counter("nvp_coalesced_total"),
        15
    );

    shutdown_local_server(addr, handle);
}

#[test]
fn malformed_and_invalid_requests_get_structured_400s() {
    let (addr, handle) = small_server();

    let garbage = post_run(addr, "{not json");
    assert_eq!(garbage.status, 400);
    assert!(String::from_utf8(garbage.body)
        .unwrap()
        .contains("\"error\""));

    let unknown = post_run(addr, r#"{"kernel":"warp"}"#);
    assert_eq!(unknown.status, 400);
    let text = String::from_utf8(unknown.body).unwrap();
    assert!(text.contains("\"field\":\"kernel\""), "{text}");

    let out_of_range = post_run(addr, r#"{"kernel":"sobel","img":4096}"#);
    assert_eq!(out_of_range.status, 400);
    let text = String::from_utf8(out_of_range.body).unwrap();
    assert!(text.contains("\"field\":\"img\""), "{text}");

    let not_found = http_request(addr, "GET", "/v2/everything", "").unwrap();
    assert_eq!(not_found.status, 404);

    let wrong_method = http_request(addr, "GET", "/v1/run", "").unwrap();
    assert_eq!(wrong_method.status, 405);

    shutdown_local_server(addr, handle);
}

#[test]
fn oversized_body_gets_413() {
    let (addr, handle) = small_server();
    let huge = "x".repeat(10 * 1024); // over the 4 KiB test limit
    let ex = post_run(addr, &huge);
    assert_eq!(ex.status, 413);
    shutdown_local_server(addr, handle);
}

#[test]
fn slow_client_is_cut_off_by_read_deadline() {
    let (addr, handle) = small_server();

    let mut stream = TcpStream::connect(addr).unwrap();
    // Declare a body, never deliver it; the 300ms deadline must fire.
    stream
        .write_all(b"POST /v1/run HTTP/1.1\r\nContent-Length: 50\r\n\r\n")
        .unwrap();
    stream.flush().unwrap();
    let mut raw = Vec::new();
    use std::io::Read;
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");

    shutdown_local_server(addr, handle);
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // One worker, one queue slot, twelve simultaneous cold requests with
    // distinct keys: at most a handful can be running-or-queued at once,
    // so admission control must bounce some of them with 429. Retried
    // 429s are not followed up — the test wants the rejection itself.
    let (addr, handle) = spawn_local_server(ServerConfig {
        workers: 1,
        queue: 1,
        ..ServerConfig::default()
    });

    let body = |seed: u64| {
        format!(r#"{{"kernel":"fft","img":32,"frames":8,"seconds":8.0,"seed":{seed}}}"#)
    };
    let clients: Vec<_> = (1..=12)
        .map(|seed| {
            let body = body(seed);
            thread::spawn(move || post_run(addr, &body))
        })
        .collect();
    let exchanges: Vec<Exchange> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let rejected: Vec<&Exchange> = exchanges.iter().filter(|e| e.status == 429).collect();
    assert!(
        !rejected.is_empty(),
        "expected at least one admission rejection, got statuses {:?}",
        exchanges.iter().map(|e| e.status).collect::<Vec<_>>()
    );
    for ex in &rejected {
        assert_eq!(ex.headers.get("retry-after").map(String::as_str), Some("1"));
        assert!(String::from_utf8_lossy(&ex.body).contains("queue"));
    }
    for ex in &exchanges {
        assert!(
            ex.status == 200 || ex.status == 429,
            "only 200/429 expected, got {}",
            ex.status
        );
    }

    shutdown_local_server(addr, handle);
}

#[test]
fn sweep_shares_the_run_cache_and_splices_identical_cell_bodies() {
    let (addr, handle) = small_server();

    // Warm one cell via /v1/run.
    let run = post_run(addr, FAST_RUN);
    assert_eq!(run.status, 200);

    let sweep_body = r#"{"kernels":["sobel"],"profiles":["p1"],"modes":["precise",{"fixed":4}],"img":8,"frames":1,"seconds":0.2}"#;
    let sweep = http_request(addr, "POST", "/v1/sweep", sweep_body).unwrap();
    assert_eq!(
        sweep.status,
        200,
        "{}",
        String::from_utf8_lossy(&sweep.body)
    );
    let text = String::from_utf8(sweep.body).unwrap();
    // The warmed cell's bytes appear verbatim inside the sweep envelope.
    let run_text = String::from_utf8(run.body).unwrap();
    assert!(
        text.contains(&run_text),
        "sweep must splice the cached run body"
    );

    // An oversized sweep is refused at parse time.
    let big = r#"{"kernels":["sobel","median","integral","susan.corners","susan.edges","susan.smoothing","jpeg.encode.mb","tiff2bw","tiff2rgba","fft"],"profiles":["p1","p2","p3","p4","p5"],"modes":["precise","simd4"]}"#;
    let refused = http_request(addr, "POST", "/v1/sweep", big).unwrap();
    assert_eq!(refused.status, 400);
    assert!(String::from_utf8(refused.body).unwrap().contains("cells"));

    shutdown_local_server(addr, handle);
}

#[test]
fn shutdown_drains_inflight_work_and_stops_accepting() {
    let (addr, handle) = spawn_local_server(ServerConfig {
        workers: 1,
        queue: 8,
        ..ServerConfig::default()
    });

    // Start a slow request, then immediately request shutdown.
    let slow = r#"{"kernel":"fft","img":16,"frames":4,"seconds":2.0,"seed":99}"#;
    let worker = thread::spawn(move || post_run(addr, slow));
    thread::sleep(Duration::from_millis(100));
    let ack = http_request(addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(ack.status, 200);

    // The in-flight simulation still completes with a full response.
    let ex = worker.join().unwrap();
    assert_eq!(ex.status, 200);
    assert!(String::from_utf8(ex.body)
        .unwrap()
        .contains("forward_progress"));

    // The server thread exits; afterwards the port refuses new requests.
    handle.join().unwrap();
    assert!(http_request(addr, "GET", "/healthz", "").is_err());
}

#[test]
fn traced_run_embeds_the_event_stream_and_keys_separately() {
    let (addr, handle) = small_server();

    let plain = post_run(addr, FAST_RUN);
    let traced = post_run(
        addr,
        r#"{"kernel":"sobel","img":8,"frames":1,"seconds":0.2,"trace":true}"#,
    );
    assert_eq!(traced.status, 200);
    // Tracing is part of the key: this was a miss, not a hit on `plain`.
    assert_eq!(
        traced.headers.get("x-cache").map(String::as_str),
        Some("miss")
    );
    let text = String::from_utf8(traced.body).unwrap();
    assert!(text.contains("\"trace_events\""), "{text}");
    assert!(text.contains("\"ev\":\"run_end\""), "{text}");
    assert!(text.len() > plain.body.len(), "traced body embeds events");

    shutdown_local_server(addr, handle);
}
