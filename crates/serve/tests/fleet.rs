//! End-to-end fleet jobs: POST, poll, and the CLI byte-identity contract.

use nvp_fleet::{run_chunks, FleetAggregate, RunOptions, ScenarioSpec};
use nvp_serve::bench::{http_request, shutdown_local_server, spawn_local_server, Exchange};
use nvp_serve::server::ServerConfig;
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

const FLEET_BODY: &str = r#"{"devices":1000,"chunk":256,"seed":7,"ms":150,"img":8,"frames":1,
    "kernels":["sobel*3","median"],"caps_nj":[2500,3500],"modes":["precise","fixed:4"]}"#;

/// The same population, spelled in the CLI's spec grammar.
const FLEET_SPEC_TEXT: &str = "fleet-spec-v1\n\
    devices = 1000\n\
    chunk = 256\n\
    seed = 7\n\
    ms = 150\n\
    img = 8\n\
    frames = 1\n\
    kernels = sobel*3, median\n\
    caps_nj = 2500, 3500\n\
    modes = precise, fixed:4\n";

fn poll_until_done(addr: SocketAddr, job: &str) -> Exchange {
    let path = format!("/v1/fleet/{job}");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let ex = http_request(addr, "GET", &path, "").expect("poll");
        assert_eq!(ex.status, 200, "{}", String::from_utf8_lossy(&ex.body));
        match ex.headers.get("x-fleet-state").map(String::as_str) {
            Some("done") => return ex,
            Some("running") => {
                assert!(Instant::now() < deadline, "fleet job did not finish");
                thread::sleep(Duration::from_millis(50));
            }
            other => panic!("unexpected fleet state {other:?}"),
        }
    }
}

#[test]
fn fleet_job_report_matches_the_cli_byte_for_byte() {
    let (addr, handle) = spawn_local_server(ServerConfig::default());

    let posted = http_request(addr, "POST", "/v1/fleet", FLEET_BODY).unwrap();
    assert_eq!(
        posted.status,
        200,
        "{}",
        String::from_utf8_lossy(&posted.body)
    );
    let body = String::from_utf8(posted.body.clone()).unwrap();

    // The job id is the content address of the canonical spec — the CLI
    // derives the identical id from the text spelling.
    let spec = ScenarioSpec::parse(FLEET_SPEC_TEXT).unwrap();
    let id = spec.job_id();
    assert!(body.contains(&format!("\"job\":\"{id}\"")), "{body}");

    let done = poll_until_done(addr, &id);

    // What the CLI would print for this spec.
    let mut agg = FleetAggregate::new(spec);
    run_chunks(&mut agg, RunOptions::default(), |_| {}).unwrap();
    assert_eq!(
        done.body,
        agg.render_report().into_bytes(),
        "served report must be byte-identical to `nvp-fleet run`"
    );

    // Re-posting the same population joins the finished job.
    let reposted = http_request(addr, "POST", "/v1/fleet", FLEET_BODY).unwrap();
    assert_eq!(reposted.status, 200);
    assert_eq!(
        reposted.headers.get("x-fleet-state").map(String::as_str),
        Some("done")
    );

    // Metrics account the job and expose the shared-cell split.
    let metrics = http_request(addr, "GET", "/metrics", "").unwrap();
    let text = String::from_utf8(metrics.body).unwrap();
    let counter = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {name} in {text}"))
    };
    assert_eq!(counter("nvp_fleet_jobs_total"), 1);
    assert_eq!(counter("nvp_fleet_jobs_deduped_total"), 1);
    assert_eq!(counter("nvp_fleet_jobs_done_total"), 1);
    assert_eq!(counter("nvp_fleet_jobs_failed_total"), 0);
    assert_eq!(counter("nvp_fleet_chunks_in_flight"), 0);
    assert_eq!(counter("nvp_fleet_chunks_done_total"), spec_chunks());
    assert!(counter("nvp_fleet_cells_computed_total") > 0, "{text}");

    shutdown_local_server(addr, handle);
}

fn spec_chunks() -> u64 {
    ScenarioSpec::parse(FLEET_SPEC_TEXT).unwrap().chunks()
}

#[test]
fn fleet_errors_are_structured() {
    let (addr, handle) = spawn_local_server(ServerConfig::default());

    // Unknown job id.
    let missing = http_request(addr, "GET", "/v1/fleet/deadbeefdeadbeef", "").unwrap();
    assert_eq!(missing.status, 404);

    // Malformed spec: zero devices.
    let bad = http_request(addr, "POST", "/v1/fleet", r#"{"devices":0}"#).unwrap();
    assert_eq!(bad.status, 400);
    let text = String::from_utf8(bad.body).unwrap();
    assert!(text.contains("\"field\":\"spec\""), "{text}");

    // Unknown field.
    let unknown = http_request(addr, "POST", "/v1/fleet", r#"{"devices":10,"cap":1}"#).unwrap();
    assert_eq!(unknown.status, 400);

    // Method guard on the collection route.
    let wrong = http_request(addr, "GET", "/v1/fleet", "").unwrap();
    assert_eq!(wrong.status, 405);

    shutdown_local_server(addr, handle);
}
