//! `nvp-serve` CLI: `serve` runs the HTTP service, `bench` runs the
//! closed-loop load generator (self-hosting a server unless `--addr`
//! points at a running one).

use nvp_serve::bench::{self, BenchConfig};
use nvp_serve::server::{Server, ServerConfig};
use nvp_serve::signal;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand '{other}'");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "nvp-serve: HTTP service over the incidental-computing simulator\n\
         \n\
         USAGE:\n\
         \u{20}   nvp-serve serve [--port P] [--jobs N] [--queue N] [--cache N] [--deadline-ms MS]\n\
         \u{20}   nvp-serve bench [--clients N] [--requests N] [--hit-rate F] [--addr HOST:PORT] [--out FILE]\n\
         \n\
         `serve` prints `listening on 127.0.0.1:PORT` (ephemeral port under --port 0)\n\
         and drains cleanly on SIGTERM or POST /shutdown.\n\
         `bench` self-hosts a server unless --addr is given, sweeps client counts\n\
         (1/4/16 by default, or just --clients N), and writes BENCH_serve.json."
    );
}

/// Pulls `--flag value` out of an argument list, complaining on
/// unparseable values.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    let Some(pos) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    let value = args
        .get(pos + 1)
        .ok_or_else(|| format!("{name} needs a value"))?;
    value
        .parse()
        .map(Some)
        .map_err(|_| format!("{name}: cannot parse '{value}'"))
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut config = ServerConfig::default();
    let parsed = (|| -> Result<(), String> {
        if let Some(port) = flag::<u16>(args, "--port")? {
            config.port = port;
        }
        if let Some(jobs) = flag::<usize>(args, "--jobs")? {
            config.workers = jobs.max(1);
        }
        if let Some(queue) = flag::<usize>(args, "--queue")? {
            config.queue = queue.max(1);
        }
        if let Some(cache) = flag::<usize>(args, "--cache")? {
            config.cache = cache.max(1);
        }
        if let Some(ms) = flag::<u64>(args, "--deadline-ms")? {
            config.read_deadline = Duration::from_millis(ms.max(1));
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    signal::install();
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The ephemeral-port contract: scripts parse this exact line.
    println!("listening on {}", server.addr());
    server.run();
    eprintln!("drained, exiting");
    ExitCode::SUCCESS
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let mut bench_config = BenchConfig::default();
    let mut out_path = "BENCH_serve.json".to_string();
    let mut external_addr: Option<std::net::SocketAddr> = None;
    let parsed = (|| -> Result<(), String> {
        if let Some(clients) = flag::<usize>(args, "--clients")? {
            bench_config.client_counts = vec![clients.max(1)];
        }
        if let Some(requests) = flag::<usize>(args, "--requests")? {
            bench_config.requests = requests.max(1);
        }
        if let Some(rate) = flag::<f64>(args, "--hit-rate")? {
            bench_config.hit_rate = rate.clamp(0.0, 1.0);
        }
        if let Some(addr) = flag::<std::net::SocketAddr>(args, "--addr")? {
            external_addr = Some(addr);
        }
        if let Some(out) = flag::<String>(args, "--out")? {
            out_path = out;
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }

    let local = external_addr.is_none();
    let (addr, handle) = match external_addr {
        Some(addr) => (addr, None),
        None => {
            let (addr, handle) = bench::spawn_local_server(ServerConfig::default());
            eprintln!("bench: self-hosted server on {addr}");
            (addr, Some(handle))
        }
    };
    bench_config.addr = addr;
    let report = bench::run(&bench_config);
    if local {
        if let Some(handle) = handle {
            bench::shutdown_local_server(addr, handle);
        }
    }
    let json = report.to_json();
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "bench: wrote {out_path} (speedup hot/cold = {:.1}x, passed = {})",
        report.speedup_hot_over_cold,
        report.passed()
    );
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench FAILED: 5xx served, hot workload missed the cache, or cached bodies diverged"
        );
        ExitCode::FAILURE
    }
}
