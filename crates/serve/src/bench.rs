//! Closed-loop load generator (`nvp-serve bench`).
//!
//! Spawns N clients that each hammer the service synchronously — one
//! request in flight per client, the classic closed-loop model — under
//! three workloads per client count:
//!
//! * **cold**: every request uses a fresh seed, so every request misses
//!   the cache and pays for a full simulation;
//! * **hot**: every request repeats one key, so after the first fill the
//!   service answers from the content-addressed cache;
//! * **mixed**: each request flips a deterministic per-client LCG coin
//!   and goes hot with probability `hit_rate`.
//!
//! The run writes `BENCH_serve.json` with throughput, latency
//! percentiles, and observed cache hit rates, and fails (nonzero exit)
//! if any 5xx was served, if the hot workload saw zero cache hits, or
//! if cached bodies were not byte-identical to the first response.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Instant;

/// One HTTP exchange as the bench client sees it.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// Response status code.
    pub status: u16,
    /// Lowercased response headers.
    pub headers: HashMap<String, String>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

/// Minimal blocking HTTP/1.1 client: one request, `Connection: close`.
/// Public so the integration tests drive the server with the exact
/// client the load generator uses.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<Exchange> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    // Writes are best-effort: a server rejecting early (413 from the
    // Content-Length alone) may close its read side mid-body, and the
    // response is still worth reading.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response"))
}

fn parse_response(raw: &[u8]) -> Option<Exchange> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Some(Exchange {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

/// Bench parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Service address.
    pub addr: SocketAddr,
    /// Client counts to sweep (closed-loop threads per phase).
    pub client_counts: Vec<usize>,
    /// Total requests per phase (split across clients).
    pub requests: usize,
    /// Probability a mixed-workload request repeats the hot key.
    pub hit_rate: f64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            client_counts: vec![1, 4, 16],
            requests: 200,
            hit_rate: 0.75,
        }
    }
}

/// One phase's aggregate results.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Closed-loop client count.
    pub clients: usize,
    /// Workload label (`cold`, `hot`, `mixed`).
    pub workload: &'static str,
    /// Requests completed.
    pub requests: usize,
    /// Wall-clock requests per second.
    pub throughput_rps: f64,
    /// Median per-request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_us: u64,
    /// Fraction of responses served with `X-Cache: hit` or `coalesced`.
    pub cache_hit_rate: f64,
    /// Count of 5xx responses (any nonzero fails the bench).
    pub errors_5xx: usize,
    /// Count of 429 admission rejections (reported, not fatal).
    pub rejected_429: usize,
}

/// Full bench outcome.
#[derive(Debug)]
pub struct BenchReport {
    /// Per-phase results, in execution order.
    pub phases: Vec<PhaseResult>,
    /// Hot-over-cold throughput ratio at the largest client count.
    pub speedup_hot_over_cold: f64,
    /// Whether every hot-path body matched the first byte-for-byte.
    pub cached_body_identical: bool,
}

/// Deterministic per-client coin: a 64-bit LCG (Knuth's constants).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn run_body(seed: u64) -> String {
    // Heavy enough that a cache miss pays a visible simulation cost —
    // the hot/cold throughput ratio is measuring the cache, and a
    // trivial workload would measure connection overhead instead.
    format!(r#"{{"kernel":"sobel","img":32,"frames":8,"seconds":4,"seed":{seed}}}"#)
}

/// The key the hot workload repeats. Phase-scoped so `cold` phases at
/// different client counts never collide with it.
const HOT_SEED: u64 = 7;

fn run_phase(
    addr: SocketAddr,
    clients: usize,
    requests: usize,
    workload: &'static str,
    hit_rate: f64,
    seed_base: u64,
) -> (PhaseResult, Vec<Vec<u8>>) {
    let per_client = requests.div_ceil(clients.max(1));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            thread::spawn(move || {
                let mut latencies: Vec<u64> = Vec::with_capacity(per_client);
                let mut hits = 0usize;
                let mut errors = 0usize;
                let mut rejected = 0usize;
                let mut hot_bodies: Vec<Vec<u8>> = Vec::new();
                let mut coin = Lcg(0x9E37_79B9 ^ (c as u64) << 17);
                for i in 0..per_client {
                    let unique = seed_base + (c as u64) * 1_000_003 + i as u64;
                    let hot = match workload {
                        "hot" => true,
                        "cold" => false,
                        _ => coin.next_unit() < hit_rate,
                    };
                    let body = run_body(if hot { HOT_SEED } else { unique });
                    let t0 = Instant::now();
                    let Ok(ex) = http_request(addr, "POST", "/v1/run", &body) else {
                        errors += 1;
                        continue;
                    };
                    latencies.push(t0.elapsed().as_micros() as u64);
                    match ex.status {
                        429 => rejected += 1,
                        s if s >= 500 => errors += 1,
                        _ => {}
                    }
                    match ex.headers.get("x-cache").map(String::as_str) {
                        Some("hit") | Some("coalesced") => hits += 1,
                        _ => {}
                    }
                    if hot && ex.status == 200 {
                        hot_bodies.push(ex.body);
                    }
                }
                (latencies, hits, errors, rejected, hot_bodies)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut hits = 0;
    let mut errors = 0;
    let mut rejected = 0;
    let mut hot_bodies = Vec::new();
    for handle in handles {
        let (l, h, e, r, b) = handle.join().expect("bench client panicked");
        latencies.extend(l);
        hits += h;
        errors += e;
        rejected += r;
        hot_bodies.extend(b);
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 * q).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx]
    };
    let completed = latencies.len();
    (
        PhaseResult {
            clients,
            workload,
            requests: completed,
            throughput_rps: completed as f64 / elapsed,
            p50_us: quantile(0.50),
            p99_us: quantile(0.99),
            cache_hit_rate: if completed == 0 {
                0.0
            } else {
                hits as f64 / completed as f64
            },
            errors_5xx: errors,
            rejected_429: rejected,
        },
        hot_bodies,
    )
}

/// Runs the full bench against a live service.
pub fn run(config: &BenchConfig) -> BenchReport {
    let mut phases = Vec::new();
    let mut all_hot_bodies: Vec<Vec<u8>> = Vec::new();
    let mut seed_base = 1_000_000;
    for &clients in &config.client_counts {
        for workload in ["cold", "hot", "mixed"] {
            let (result, hot_bodies) = run_phase(
                config.addr,
                clients,
                config.requests,
                workload,
                config.hit_rate,
                seed_base,
            );
            // Distinct seed ranges per phase keep cold phases genuinely cold.
            seed_base += 100_000_000;
            eprintln!(
                "bench: clients={} workload={:<5} rps={:8.1} p50={}us p99={}us hit_rate={:.2} 5xx={} 429={}",
                result.clients,
                result.workload,
                result.throughput_rps,
                result.p50_us,
                result.p99_us,
                result.cache_hit_rate,
                result.errors_5xx,
                result.rejected_429,
            );
            phases.push(result);
            all_hot_bodies.extend(hot_bodies);
        }
    }
    let cached_body_identical = match all_hot_bodies.split_first() {
        None => false,
        Some((first, rest)) => rest.iter().all(|b| b == first),
    };
    let max_clients = config.client_counts.iter().copied().max().unwrap_or(1);
    let rps = |workload: &str| {
        phases
            .iter()
            .find(|p| p.clients == max_clients && p.workload == workload)
            .map(|p| p.throughput_rps)
            .unwrap_or(0.0)
    };
    let cold = rps("cold");
    BenchReport {
        speedup_hot_over_cold: if cold > 0.0 { rps("hot") / cold } else { 0.0 },
        cached_body_identical,
        phases,
    }
}

impl BenchReport {
    /// True when the acceptance gates hold: no 5xx anywhere, the hot
    /// workload actually hit the cache, and cached bodies were
    /// byte-identical.
    pub fn passed(&self) -> bool {
        let no_5xx = self.phases.iter().all(|p| p.errors_5xx == 0);
        let hot_hit = self
            .phases
            .iter()
            .filter(|p| p.workload == "hot")
            .all(|p| p.cache_hit_rate > 0.0);
        no_5xx && hot_hit && self.cached_body_identical
    }

    /// Renders the `BENCH_serve.json` document.
    pub fn to_json(&self) -> String {
        use crate::json::Json;
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("clients", Json::Num(p.clients as f64)),
                    ("workload", Json::str(p.workload)),
                    ("requests", Json::Num(p.requests as f64)),
                    (
                        "throughput_rps",
                        Json::Num((p.throughput_rps * 10.0).round() / 10.0),
                    ),
                    ("p50_us", Json::Num(p.p50_us as f64)),
                    ("p99_us", Json::Num(p.p99_us as f64)),
                    (
                        "cache_hit_rate",
                        Json::Num((p.cache_hit_rate * 1000.0).round() / 1000.0),
                    ),
                    ("errors_5xx", Json::Num(p.errors_5xx as f64)),
                    ("rejected_429", Json::Num(p.rejected_429 as f64)),
                ])
            })
            .collect();
        let host_cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Json::obj(vec![
            ("bench", Json::str("nvp-serve")),
            ("host_cpus", Json::Num(host_cpus as f64)),
            ("phases", Json::Arr(phases)),
            (
                "speedup_hot_over_cold",
                Json::Num((self.speedup_hot_over_cold * 100.0).round() / 100.0),
            ),
            (
                "cached_body_identical",
                Json::Bool(self.cached_body_identical),
            ),
            ("passed", Json::Bool(self.passed())),
        ])
        .render()
    }
}

/// Spawns an in-process server on an ephemeral port and returns its
/// address plus a guard thread handle; used by `bench --self-host` and
/// the integration tests.
pub fn spawn_local_server(
    config: crate::server::ServerConfig,
) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = crate::server::Server::bind(config).expect("bind ephemeral port");
    let addr = server.addr();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

/// Requests a clean shutdown of a server started by [`spawn_local_server`].
pub fn shutdown_local_server(addr: SocketAddr, handle: thread::JoinHandle<()>) {
    let _ = http_request(addr, "POST", "/shutdown", "");
    let _ = handle.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_unit_ranged() {
        let mut a = Lcg(42);
        let mut b = Lcg(42);
        for _ in 0..100 {
            let (x, y) = (a.next_unit(), b.next_unit());
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn response_parser_handles_headers_and_body() {
        let ex = parse_response(b"HTTP/1.1 200 OK\r\nX-Cache: hit\r\nContent-Length: 2\r\n\r\nok")
            .unwrap();
        assert_eq!(ex.status, 200);
        assert_eq!(ex.headers.get("x-cache").unwrap(), "hit");
        assert_eq!(ex.body, b"ok");
    }
}
