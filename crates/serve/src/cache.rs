//! Content-addressed result cache with request coalescing.
//!
//! The cache maps canonical [`SimKey`](crate::key::SimKey) strings to
//! fully rendered response bodies (`Arc<Vec<u8>>`): a hit re-serves the
//! exact bytes the first computation produced, which is what makes the
//! byte-identity guarantee in DESIGN.md §10 checkable from outside.
//!
//! Three concerns live here:
//!
//! * **Sharding** — keys are FNV-1a hashed onto a fixed set of shards so
//!   concurrent clients on different keys do not serialize on one mutex.
//! * **Single-flight** — the first requester of a missing key becomes the
//!   *leader* (gets a [`LeaderToken`]); every concurrent requester of the
//!   same key *joins* the leader's [`Flight`] and blocks until the leader
//!   publishes, so N simultaneous identical requests cost one simulation.
//! * **Bounded LRU** — each shard holds at most `capacity / SHARDS`
//!   entries; inserting into a full shard evicts the least-recently-used
//!   entry (smallest access tick, found by scan — shards are small).
//!
//! The leader token completes its flight *on drop*: if the leader's job
//! is rejected by admission control or its thread unwinds, joiners are
//! released with an error instead of blocking forever.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Number of independently locked shards (power of two).
const SHARDS: usize = 8;

/// What a joiner learns when a flight completes without a value: the
/// leader failed, and joiners should report the same failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightError {
    /// The leader's job was refused by admission control.
    Rejected,
    /// The leader's worker panicked or dropped the token without publishing.
    Failed,
}

/// One in-progress computation that concurrent requesters wait on.
#[derive(Debug)]
pub struct Flight {
    slot: Mutex<Option<Result<Arc<Vec<u8>>, FlightError>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    /// Blocks until the leader publishes, then returns its outcome.
    pub fn wait(&self) -> Result<Arc<Vec<u8>>, FlightError> {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        while slot.is_none() {
            slot = self.done.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
        slot.clone().expect("flight slot checked non-empty")
    }

    fn publish(&self, outcome: Result<Arc<Vec<u8>>, FlightError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(outcome);
            self.done.notify_all();
        }
    }
}

/// Leadership of one cache fill. Exactly one exists per in-flight key.
///
/// Call [`complete`](LeaderToken::complete) with the rendered body to
/// publish it to the cache and release joiners. If the token is dropped
/// without completing (admission rejection, worker panic), joiners are
/// released with [`FlightError`] instead — nobody waits on a dead leader.
#[derive(Debug)]
pub struct LeaderToken {
    cache: Arc<ResultCache>,
    key: String,
    flight: Arc<Flight>,
    verdict: Option<FlightError>,
    finished: bool,
}

impl LeaderToken {
    /// Publishes the computed body: inserts it into the cache (evicting
    /// LRU if the shard is full) and wakes every joiner with the value.
    pub fn complete(mut self, body: Arc<Vec<u8>>) {
        self.finished = true;
        self.cache.insert(&self.key, Arc::clone(&body));
        self.flight.publish(Ok(body));
    }

    /// Marks the failure joiners should observe if this token dies
    /// without completing (default: [`FlightError::Failed`]).
    pub fn fail_with(&mut self, err: FlightError) {
        self.verdict = Some(err);
    }

    /// The flight this token leads. The leader's own thread waits on
    /// this after handing the token to a worker, exactly like a joiner.
    pub fn flight(&self) -> Arc<Flight> {
        Arc::clone(&self.flight)
    }
}

impl Drop for LeaderToken {
    fn drop(&mut self) {
        if !self.finished {
            let err = self.verdict.clone().unwrap_or(FlightError::Failed);
            self.cache.abandon(&self.key);
            self.flight.publish(Err(err));
        }
    }
}

/// Outcome of a cache lookup.
#[derive(Debug)]
pub enum Lookup {
    /// The body is cached; serve it directly.
    Hit(Arc<Vec<u8>>),
    /// Nobody is computing this key: the caller is now the leader and
    /// must either `complete` the token or drop it.
    Miss(LeaderToken),
    /// Another request is already computing this key; `wait` on the
    /// flight for the leader's bytes.
    Join(Arc<Flight>),
}

#[derive(Default)]
struct Shard {
    entries: HashMap<String, Entry>,
    inflight: HashMap<String, Arc<Flight>>,
}

struct Entry {
    body: Arc<Vec<u8>>,
    /// Last-access tick; smallest tick is the eviction victim.
    tick: u64,
}

/// The sharded, single-flight, LRU-bounded body cache.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    clock: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &(self.per_shard * SHARDS))
            .field("len", &self.len())
            .finish()
    }
}

/// FNV-1a, the same construction the trace subsystem uses for stable
/// hashing — no dependency on `RandomState` iteration order.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl ResultCache {
    /// A cache holding at most `capacity` bodies total (rounded up to a
    /// multiple of the shard count, minimum one entry per shard).
    pub fn new(capacity: usize) -> Arc<ResultCache> {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        Arc::new(ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
            clock: std::sync::atomic::AtomicU64::new(0),
        })
    }

    fn shard(&self, key: &str) -> MutexGuard<'_, Shard> {
        let idx = (fnv1a(key.as_bytes()) as usize) & (SHARDS - 1);
        self.shards[idx].lock().unwrap_or_else(|p| p.into_inner())
    }

    fn tick(&self) -> u64 {
        self.clock
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Looks up `key`, claiming leadership of the fill on a miss.
    pub fn lookup(self: &Arc<Self>, key: &str) -> Lookup {
        let tick = self.tick();
        let mut shard = self.shard(key);
        if let Some(entry) = shard.entries.get_mut(key) {
            entry.tick = tick;
            return Lookup::Hit(Arc::clone(&entry.body));
        }
        if let Some(flight) = shard.inflight.get(key) {
            return Lookup::Join(Arc::clone(flight));
        }
        let flight = Flight::new();
        shard.inflight.insert(key.to_string(), Arc::clone(&flight));
        Lookup::Miss(LeaderToken {
            cache: Arc::clone(self),
            key: key.to_string(),
            flight,
            verdict: None,
            finished: false,
        })
    }

    /// Number of cached bodies across all shards (for `/metrics`).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).entries.len())
            .sum()
    }

    /// True when no bodies are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn insert(&self, key: &str, body: Arc<Vec<u8>>) {
        let tick = self.tick();
        let mut shard = self.shard(key);
        shard.inflight.remove(key);
        if shard.entries.len() >= self.per_shard && !shard.entries.contains_key(key) {
            if let Some(victim) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&victim);
            }
        }
        shard.entries.insert(key.to_string(), Entry { body, tick });
    }

    fn abandon(&self, key: &str) {
        self.shard(key).inflight.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn body(text: &str) -> Arc<Vec<u8>> {
        Arc::new(text.as_bytes().to_vec())
    }

    #[test]
    fn miss_then_hit_returns_same_bytes() {
        let cache = ResultCache::new(16);
        let Lookup::Miss(token) = cache.lookup("k1") else {
            panic!("expected miss");
        };
        token.complete(body("payload"));
        let Lookup::Hit(hit) = cache.lookup("k1") else {
            panic!("expected hit");
        };
        assert_eq!(&**hit, b"payload");
    }

    #[test]
    fn joiners_receive_the_leaders_bytes() {
        let cache = ResultCache::new(16);
        let Lookup::Miss(token) = cache.lookup("k") else {
            panic!("expected miss");
        };
        let mut joiners = Vec::new();
        for _ in 0..4 {
            let Lookup::Join(flight) = cache.lookup("k") else {
                panic!("expected join while flight open");
            };
            joiners.push(thread::spawn(move || flight.wait()));
        }
        token.complete(body("once"));
        for j in joiners {
            assert_eq!(&**j.join().unwrap().unwrap(), b"once");
        }
    }

    #[test]
    fn dropped_leader_releases_joiners_with_error() {
        let cache = ResultCache::new(16);
        let Lookup::Miss(mut token) = cache.lookup("k") else {
            panic!("expected miss");
        };
        let Lookup::Join(flight) = cache.lookup("k") else {
            panic!("expected join");
        };
        token.fail_with(FlightError::Rejected);
        drop(token);
        assert_eq!(flight.wait().unwrap_err(), FlightError::Rejected);
        // The key is fillable again afterwards.
        assert!(matches!(cache.lookup("k"), Lookup::Miss(_)));
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        // Single-entry-per-shard cache: any two keys in one shard compete.
        let cache = ResultCache::new(1);
        // Find three keys in the same shard.
        let mut keys = Vec::new();
        for i in 0.. {
            let k = format!("key{i}");
            if (fnv1a(k.as_bytes()) as usize) & (SHARDS - 1) == 0 {
                keys.push(k);
                if keys.len() == 3 {
                    break;
                }
            }
        }
        let fill = |k: &str, v: &str| {
            let Lookup::Miss(t) = cache.lookup(k) else {
                panic!("expected miss for {k}");
            };
            t.complete(body(v));
        };
        fill(&keys[0], "a");
        fill(&keys[1], "b"); // evicts keys[0] (shard holds one entry)
        assert!(matches!(cache.lookup(&keys[0]), Lookup::Miss(_)));
    }
}
