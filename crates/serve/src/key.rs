//! Request canonicalization: from JSON bodies to content-addressed
//! [`SimKey`]s.
//!
//! A `SimKey` is the *identity* of a simulation: every field that can
//! change the result is in it, nothing else is. Two requests that differ
//! only in whitespace, field order, or spelling (`"Sobel"` vs `"sobel"`,
//! `1.5` vs `1.50`) canonicalize to the same key and therefore the same
//! cache slot. Conversely the optional trace echo *is* part of the key —
//! it changes the response body, and the cache stores rendered bodies.
//!
//! Canonicalization rules (documented in DESIGN.md §10):
//! * kernel names are matched case-insensitively against the paper names,
//! * the trace length is quantized to whole milliseconds,
//! * every field has a server-side default, so the canonical form is
//!   always fully explicit,
//! * bounds are enforced at parse time (a served simulator must not be
//!   askable for an hour-long trace).

use crate::json::Json;
use nvp_isa::ApproxConfig;
use nvp_kernels::KernelId;
use nvp_power::synth::WatchProfile;
use nvp_repro::catalog::RunRequest;
use nvp_sim::{ExecEngine, ExecMode, Governor, IncidentalSetup};
use std::fmt;

/// A request the service refuses, with the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// Which request field was wrong (`"body"` for whole-document errors).
    pub field: &'static str,
    /// Human-readable reason.
    pub detail: String,
}

impl BadRequest {
    pub(crate) fn new(field: &'static str, detail: impl Into<String>) -> Self {
        BadRequest {
            field,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for BadRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad request field '{}': {}", self.field, self.detail)
    }
}

impl std::error::Error for BadRequest {}

/// Which NVP variant to simulate, in canonical (validated) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModeSpec {
    /// Conventional precise NVP.
    Precise,
    /// Full-precision 4-lane SIMD baseline.
    Simd4,
    /// Fixed approximate datapath at `bits`.
    Fixed(u8),
    /// Dynamic-bitwidth governor over `[minbits, maxbits]`.
    Dynamic(u8, u8),
    /// Incidental NVP over `[minbits, maxbits]`.
    Incidental(u8, u8),
}

impl ModeSpec {
    /// Canonical wire spelling, also used inside the cache key.
    fn canonical(&self) -> String {
        match self {
            ModeSpec::Precise => "precise".to_string(),
            ModeSpec::Simd4 => "simd4".to_string(),
            ModeSpec::Fixed(bits) => format!("fixed:{bits}"),
            ModeSpec::Dynamic(lo, hi) => format!("dynamic:{lo}-{hi}"),
            ModeSpec::Incidental(lo, hi) => format!("incidental:{lo}-{hi}"),
        }
    }

    /// The simulator mode this spec denotes.
    pub fn exec_mode(&self) -> ExecMode {
        match *self {
            ModeSpec::Precise => ExecMode::Precise,
            ModeSpec::Simd4 => ExecMode::Simd4,
            ModeSpec::Fixed(bits) => ExecMode::Fixed(ApproxConfig::fixed(bits)),
            ModeSpec::Dynamic(lo, hi) => ExecMode::Dynamic(Governor::new(lo, hi)),
            ModeSpec::Incidental(lo, hi) => ExecMode::Incidental(IncidentalSetup::new(lo, hi)),
        }
    }

    /// Parses the request's `mode` value: `"precise"`, `"simd4"`,
    /// `{"fixed": bits}`, `{"dynamic": {"minbits": m, "maxbits": M}}` or
    /// `{"incidental": {"minbits": m, "maxbits": M}}`.
    fn parse(value: &Json) -> Result<ModeSpec, BadRequest> {
        let bad = |detail: String| BadRequest::new("mode", detail);
        if let Some(name) = value.as_str() {
            return match name.to_ascii_lowercase().as_str() {
                "precise" => Ok(ModeSpec::Precise),
                "simd4" => Ok(ModeSpec::Simd4),
                other => Err(bad(format!(
                    "unknown mode '{other}' (want precise|simd4|{{\"fixed\":N}}|{{\"dynamic\":…}}|{{\"incidental\":…}})"
                ))),
            };
        }
        let bits_of = |v: &Json, what: &str| {
            v.as_u64()
                .filter(|b| (1..=8).contains(b))
                .map(|b| b as u8)
                .ok_or_else(|| bad(format!("{what} must be an integer in 1..=8")))
        };
        let range_of = |v: &Json, what: &str| -> Result<(u8, u8), BadRequest> {
            let lo = bits_of(
                v.get("minbits")
                    .ok_or_else(|| bad(format!("{what} needs a minbits field")))?,
                "minbits",
            )?;
            let hi = bits_of(
                v.get("maxbits")
                    .ok_or_else(|| bad(format!("{what} needs a maxbits field")))?,
                "maxbits",
            )?;
            if lo > hi {
                return Err(bad(format!("minbits {lo} exceeds maxbits {hi}")));
            }
            Ok((lo, hi))
        };
        if let Some(v) = value.get("fixed") {
            return Ok(ModeSpec::Fixed(bits_of(v, "fixed bits")?));
        }
        if let Some(v) = value.get("dynamic") {
            let (lo, hi) = range_of(v, "dynamic mode")?;
            return Ok(ModeSpec::Dynamic(lo, hi));
        }
        if let Some(v) = value.get("incidental") {
            let (lo, hi) = range_of(v, "incidental mode")?;
            return Ok(ModeSpec::Incidental(lo, hi));
        }
        Err(bad("mode must be a string or a one-key object".to_string()))
    }
}

/// Bounds on what one request may ask the simulator to do.
mod limits {
    /// Image edge length in pixels.
    pub const IMG: (usize, usize) = (8, 48);
    /// Number of cycled input frames.
    pub const FRAMES: (usize, usize) = (1, 8);
    /// Power-trace length, milliseconds.
    pub const TRACE_MS: (u64, u64) = (100, 30_000);
}

/// The canonical identity of one simulation request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimKey {
    /// Testbench.
    pub kernel: KernelId,
    /// Image edge length in pixels.
    pub img: usize,
    /// Cycled input frames.
    pub frames: usize,
    /// Power-trace length in whole milliseconds (quantized from the
    /// request's fractional seconds).
    pub trace_ms: u64,
    /// Harvested-power profile.
    pub profile: WatchProfile,
    /// NVP variant.
    pub mode: ModeSpec,
    /// Capacitor-check scheduling engine. Results are engine-invariant,
    /// but the field is kept in the key so responses can be attributed and
    /// the engines benchmarked against each other through the service.
    pub engine: ExecEngine,
    /// Retention-decay RNG seed.
    pub seed: u64,
    /// Whether the response streams the run's JSONL trace back (changes
    /// the body, hence part of the key).
    pub trace: bool,
}

impl SimKey {
    /// Parses and canonicalizes a `POST /v1/run` body.
    pub fn from_json(body: &Json) -> Result<SimKey, BadRequest> {
        if !matches!(body, Json::Obj(_)) {
            return Err(BadRequest::new(
                "body",
                "request body must be a JSON object",
            ));
        }
        let kernel = match body.get("kernel") {
            None => return Err(BadRequest::new("kernel", "missing required field")),
            Some(v) => parse_kernel(v)?,
        };
        let img = parse_bounded(body, "img", limits::IMG, 12)?;
        let frames = parse_bounded(body, "frames", limits::FRAMES, 2)?;
        let trace_ms = parse_trace_ms(body)?;
        let profile = parse_profile(body)?;
        let mode = match body.get("mode") {
            None => ModeSpec::Precise,
            Some(v) => ModeSpec::parse(v)?,
        };
        let engine = parse_engine(body)?;
        let seed = match body.get("seed") {
            None => 0x5EED,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| BadRequest::new("seed", "must be a non-negative integer"))?,
        };
        let trace = match body.get("trace") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| BadRequest::new("trace", "must be a boolean"))?,
        };
        Ok(SimKey {
            kernel,
            img,
            frames,
            trace_ms,
            profile,
            mode,
            engine,
            seed,
            trace,
        })
    }

    /// The canonical content address. Equal keys — and only equal keys —
    /// render equal strings.
    pub fn canonical(&self) -> String {
        format!(
            "run/kernel={}&img={}&frames={}&ms={}&profile=p{}&mode={}&engine={}&seed={}&trace={}",
            self.kernel.name(),
            self.img,
            self.frames,
            self.trace_ms,
            self.profile.index(),
            self.mode.canonical(),
            engine_tag(self.engine),
            self.seed,
            u8::from(self.trace),
        )
    }

    /// The catalog request this key denotes.
    pub fn run_request(&self) -> RunRequest {
        RunRequest {
            kernel: self.kernel,
            img: self.img,
            frames: self.frames,
            trace_seconds: self.trace_ms as f64 / 1000.0,
            profile: self.profile,
            mode: self.mode.exec_mode(),
            engine: self.engine,
            seed: self.seed,
        }
    }
}

/// Canonical wire spelling of an execution engine, used in cache keys,
/// response bodies and `/metrics` labels.
pub fn engine_tag(engine: ExecEngine) -> &'static str {
    match engine {
        ExecEngine::Step => "step",
        ExecEngine::BlockBudget => "block",
        ExecEngine::Compiled => "compiled",
    }
}

/// Parses the optional `engine` field: `"step"`, `"block"` or
/// `"compiled"`. The served default is the compiled engine — results are
/// engine-invariant and it is the cheapest way to answer a cold request.
fn parse_engine(body: &Json) -> Result<ExecEngine, BadRequest> {
    let Some(value) = body.get("engine") else {
        return Ok(ExecEngine::Compiled);
    };
    let name = value
        .as_str()
        .ok_or_else(|| BadRequest::new("engine", "must be a string"))?;
    match name.to_ascii_lowercase().as_str() {
        "step" => Ok(ExecEngine::Step),
        "block" => Ok(ExecEngine::BlockBudget),
        "compiled" => Ok(ExecEngine::Compiled),
        other => Err(BadRequest::new(
            "engine",
            format!("unknown engine '{other}' (want step|block|compiled)"),
        )),
    }
}

fn parse_kernel(value: &Json) -> Result<KernelId, BadRequest> {
    let name = value
        .as_str()
        .ok_or_else(|| BadRequest::new("kernel", "must be a string"))?;
    KernelId::ALL
        .iter()
        .copied()
        .find(|id| id.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<&str> = KernelId::ALL.iter().map(|id| id.name()).collect();
            BadRequest::new(
                "kernel",
                format!("unknown kernel '{name}' (one of: {})", names.join(", ")),
            )
        })
}

fn parse_profile(body: &Json) -> Result<WatchProfile, BadRequest> {
    let Some(value) = body.get("profile") else {
        return Ok(WatchProfile::P1);
    };
    let name = value
        .as_str()
        .ok_or_else(|| BadRequest::new("profile", "must be a string"))?;
    WatchProfile::ALL
        .iter()
        .copied()
        .find(|p| format!("p{}", p.index()).eq_ignore_ascii_case(name))
        .ok_or_else(|| BadRequest::new("profile", format!("unknown profile '{name}' (p1..p5)")))
}

fn parse_bounded(
    body: &Json,
    field: &'static str,
    (lo, hi): (usize, usize),
    default: usize,
) -> Result<usize, BadRequest> {
    let Some(value) = body.get(field) else {
        return Ok(default);
    };
    value
        .as_u64()
        .map(|v| v as usize)
        .filter(|v| (lo..=hi).contains(v))
        .ok_or_else(|| BadRequest::new(field, format!("must be an integer in {lo}..={hi}")))
}

fn parse_trace_ms(body: &Json) -> Result<u64, BadRequest> {
    let Some(value) = body.get("seconds") else {
        return Ok(1500);
    };
    let secs = value
        .as_f64()
        .filter(|s| s.is_finite() && *s > 0.0)
        .ok_or_else(|| BadRequest::new("seconds", "must be a positive number"))?;
    let ms = (secs * 1000.0).round() as u64;
    let (lo, hi) = limits::TRACE_MS;
    if !(lo..=hi).contains(&ms) {
        return Err(BadRequest::new(
            "seconds",
            format!("must quantize to {lo}..={hi} ms (got {ms} ms)"),
        ));
    }
    Ok(ms)
}

/// A parsed `POST /v1/sweep` body: the cross-product of kernels ×
/// profiles × modes at one scale, expanded to per-cell [`SimKey`]s.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Expanded cells, in kernel-major, profile-then-mode order.
    pub cells: Vec<SimKey>,
}

/// Most cells one sweep may expand to (admission control at parse time;
/// bigger studies should page their requests).
pub const MAX_SWEEP_CELLS: usize = 64;

impl SweepSpec {
    /// Parses and expands a sweep body. Shared scalar fields (`img`,
    /// `frames`, `seconds`, `seed`) follow the same rules as `/v1/run`;
    /// `kernels`, `profiles` and `modes` are arrays (defaulting to
    /// `["sobel"]`, `["p1"]` and `["precise"]`).
    pub fn from_json(body: &Json) -> Result<SweepSpec, BadRequest> {
        if !matches!(body, Json::Obj(_)) {
            return Err(BadRequest::new(
                "body",
                "request body must be a JSON object",
            ));
        }
        let kernels: Vec<KernelId> = match body.get("kernels") {
            None => vec![KernelId::Sobel],
            Some(v) => v
                .as_array()
                .ok_or_else(|| BadRequest::new("kernels", "must be an array"))?
                .iter()
                .map(parse_kernel)
                .collect::<Result<_, _>>()?,
        };
        let profiles: Vec<WatchProfile> = match body.get("profiles") {
            None => vec![WatchProfile::P1],
            Some(v) => v
                .as_array()
                .ok_or_else(|| BadRequest::new("profiles", "must be an array"))?
                .iter()
                .map(|p| parse_profile(&Json::obj(vec![("profile", p.clone())])))
                .collect::<Result<_, _>>()?,
        };
        let modes: Vec<ModeSpec> = match body.get("modes") {
            None => vec![ModeSpec::Precise],
            Some(v) => v
                .as_array()
                .ok_or_else(|| BadRequest::new("modes", "must be an array"))?
                .iter()
                .map(ModeSpec::parse)
                .collect::<Result<_, _>>()?,
        };
        if kernels.is_empty() || profiles.is_empty() || modes.is_empty() {
            return Err(BadRequest::new(
                "body",
                "kernels/profiles/modes must be non-empty",
            ));
        }
        let img = parse_bounded(body, "img", limits::IMG, 12)?;
        let frames = parse_bounded(body, "frames", limits::FRAMES, 2)?;
        let trace_ms = parse_trace_ms(body)?;
        let engine = parse_engine(body)?;
        let seed = match body.get("seed") {
            None => 0x5EED,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| BadRequest::new("seed", "must be a non-negative integer"))?,
        };
        let total = kernels.len() * profiles.len() * modes.len();
        if total > MAX_SWEEP_CELLS {
            return Err(BadRequest::new(
                "body",
                format!("sweep expands to {total} cells (limit {MAX_SWEEP_CELLS})"),
            ));
        }
        let mut cells = Vec::with_capacity(total);
        for &kernel in &kernels {
            for &profile in &profiles {
                for &mode in &modes {
                    cells.push(SimKey {
                        kernel,
                        img,
                        frames,
                        trace_ms,
                        profile,
                        mode,
                        engine,
                        seed,
                        trace: false,
                    });
                }
            }
        }
        Ok(SweepSpec { cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_run(text: &str) -> Result<SimKey, BadRequest> {
        SimKey::from_json(&Json::parse(text).unwrap())
    }

    #[test]
    fn spelling_variants_canonicalize_identically() {
        let a = parse_run(r#"{"kernel":"sobel","seconds":1.5,"mode":{"fixed":4}}"#).unwrap();
        let b = parse_run(
            r#"{"mode":{"fixed":4},"seconds":1.50,"kernel":"Sobel","img":12,"frames":2,"profile":"P1","seed":24301,"trace":false}"#,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(
            a.canonical(),
            "run/kernel=sobel&img=12&frames=2&ms=1500&profile=p1&mode=fixed:4&engine=compiled&seed=24301&trace=0"
        );
    }

    #[test]
    fn engine_defaults_to_compiled_and_changes_the_key() {
        let default = parse_run(r#"{"kernel":"sobel"}"#).unwrap();
        assert_eq!(default.engine, ExecEngine::Compiled);
        let explicit = parse_run(r#"{"kernel":"sobel","engine":"Compiled"}"#).unwrap();
        assert_eq!(default, explicit, "spelling is case-insensitive");
        let step = parse_run(r#"{"kernel":"sobel","engine":"step"}"#).unwrap();
        assert_eq!(step.engine, ExecEngine::Step);
        assert_ne!(default.canonical(), step.canonical());
        assert!(step.canonical().contains("&engine=step&"));
        let block = parse_run(r#"{"kernel":"sobel","engine":"block"}"#).unwrap();
        assert_eq!(block.run_request().engine, ExecEngine::BlockBudget);
    }

    #[test]
    fn trace_flag_changes_the_key() {
        let plain = parse_run(r#"{"kernel":"sobel"}"#).unwrap();
        let traced = parse_run(r#"{"kernel":"sobel","trace":true}"#).unwrap();
        assert_ne!(plain.canonical(), traced.canonical());
    }

    #[test]
    fn bad_fields_name_the_field() {
        for (text, field) in [
            (r#"{"kernel":"warp"}"#, "kernel"),
            (r#"{}"#, "kernel"),
            (r#"{"kernel":"sobel","img":1000}"#, "img"),
            (r#"{"kernel":"sobel","frames":0}"#, "frames"),
            (r#"{"kernel":"sobel","seconds":-2}"#, "seconds"),
            (r#"{"kernel":"sobel","seconds":9999}"#, "seconds"),
            (r#"{"kernel":"sobel","profile":"p9"}"#, "profile"),
            (r#"{"kernel":"sobel","mode":"vibes"}"#, "mode"),
            (r#"{"kernel":"sobel","mode":{"fixed":9}}"#, "mode"),
            (
                r#"{"kernel":"sobel","mode":{"dynamic":{"minbits":6,"maxbits":2}}}"#,
                "mode",
            ),
            (r#"{"kernel":"sobel","engine":"jit"}"#, "engine"),
            (r#"{"kernel":"sobel","engine":7}"#, "engine"),
            (r#"{"kernel":"sobel","seed":-1}"#, "seed"),
            (r#"{"kernel":"sobel","trace":"yes"}"#, "trace"),
            (r#"[1,2]"#, "body"),
        ] {
            let err = parse_run(text).unwrap_err();
            assert_eq!(err.field, field, "for {text}: {err}");
        }
    }

    #[test]
    fn all_modes_build_exec_modes() {
        for (text, tag) in [
            (r#""precise""#, "precise"),
            (r#""simd4""#, "simd4"),
            (r#"{"fixed":3}"#, "fixed:3"),
            (r#"{"dynamic":{"minbits":2,"maxbits":8}}"#, "dynamic:2-8"),
            (
                r#"{"incidental":{"minbits":4,"maxbits":8}}"#,
                "incidental:4-8",
            ),
        ] {
            let spec = ModeSpec::parse(&Json::parse(text).unwrap()).unwrap();
            assert_eq!(spec.canonical(), tag);
            let _ = spec.exec_mode(); // must not panic
        }
    }

    #[test]
    fn sweep_expands_the_cross_product_in_order() {
        let spec = SweepSpec::from_json(
            &Json::parse(
                r#"{"kernels":["sobel","median"],"profiles":["p1","p3"],"modes":["precise",{"fixed":4}]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(spec.cells.len(), 8);
        assert_eq!(spec.cells[0].kernel, KernelId::Sobel);
        assert_eq!(spec.cells[0].mode, ModeSpec::Precise);
        assert_eq!(spec.cells[1].mode, ModeSpec::Fixed(4));
        assert_eq!(spec.cells[7].kernel, KernelId::Median);
        assert_eq!(spec.cells[7].profile, WatchProfile::P3);
    }

    #[test]
    fn sweep_cell_cap_is_enforced() {
        let kernels: Vec<String> = KernelId::ALL
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect();
        let modes: Vec<String> = (1..=8).map(|b| format!("{{\"fixed\":{b}}}")).collect();
        let text = format!(
            r#"{{"kernels":[{}],"profiles":["p1","p2"],"modes":[{}]}}"#,
            kernels.join(","),
            modes.join(","),
        );
        let err = SweepSpec::from_json(&Json::parse(&text).unwrap()).unwrap_err();
        assert!(err.detail.contains("160 cells"), "{err}");
    }
}
