//! SIGTERM handling without a signals crate.
//!
//! The only async-signal-safe thing the handler does is store into an
//! `AtomicBool`; the accept loop polls that flag between accepts. On
//! non-Unix targets installation is a no-op and shutdown is reachable
//! only through `POST /shutdown` — which is also how the tests exercise
//! the drain path, so the signal wiring itself stays a thin adapter.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a shutdown has been requested by signal or endpoint.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown from inside the process (`POST /shutdown`, tests).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag so a subsequent in-process server can run (tests
/// start several servers in one process).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGTERM: i32 = 15;
    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that only stores into an
        // atomic is async-signal-safe; we never inspect the return value
        // because failure just leaves the default disposition in place.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Installs SIGTERM/SIGINT handlers that trip the shutdown flag.
/// No-op on non-Unix targets.
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset_roundtrip() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }
}
