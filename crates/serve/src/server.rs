//! The service itself: routing, admission control, and the drain path.
//!
//! Request lifecycle for `POST /v1/run`:
//!
//! 1. the body is parsed and canonicalized into a [`SimKey`];
//! 2. the key is looked up in the [`ResultCache`] — a hit serves the
//!    stored bytes, a concurrent duplicate joins the in-flight leader;
//! 3. a genuine miss claims leadership and submits one job to the
//!    bounded [`ServicePool`] queue — a full queue answers `429` with
//!    `Retry-After`, and every joiner of that flight sees the same 429;
//! 4. the worker simulates, renders the body once, publishes it to the
//!    cache, and every waiter (leader included) serves those exact bytes.
//!
//! Cache status travels in the `X-Cache` response header (`hit`, `miss`
//! or `coalesced`) and **never** in the body, so cached and uncached
//! responses for one key are byte-identical — the property PR 4's
//! determinism work makes checkable.

use crate::cache::{FlightError, Lookup, ResultCache};
use crate::http::{read_request, RecvError, Request, Response};
use crate::json::Json;
use crate::key::{BadRequest, SimKey, SweepSpec};
use crate::metrics::{bump, Metrics};
use crate::signal;
use nvp_exec::ServicePool;
use nvp_kernels::KernelId;
use nvp_sim::RunReport;
use nvp_trace::{CounterSink, JsonlBufSink, TeeSink};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP port; `0` asks the OS for an ephemeral port.
    pub port: u16,
    /// Simulation worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity (admission control).
    pub queue: usize,
    /// Result-cache capacity in bodies.
    pub cache: usize,
    /// Per-request read deadline for slow clients.
    pub read_deadline: Duration,
    /// Largest accepted request body.
    pub max_body: usize,
    /// Concurrent-connection cap.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            queue: 64,
            cache: 1024,
            read_deadline: Duration::from_secs(2),
            max_body: 64 * 1024,
            max_connections: 64,
        }
    }
}

pub(crate) struct Inner {
    config: ServerConfig,
    cache: Arc<ResultCache>,
    pub(crate) metrics: Arc<Metrics>,
    /// `shutdown(self)` consumes the pool, so it lives behind an Option.
    pub(crate) pool: Mutex<Option<ServicePool>>,
    pub(crate) fleet: crate::fleet::FleetJobs,
    draining: AtomicBool,
    active: AtomicUsize,
}

/// A bound-but-not-yet-running service.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds `127.0.0.1:port` and builds the pool and cache.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            cache: ResultCache::new(config.cache),
            metrics: Arc::new(Metrics::default()),
            pool: Mutex::new(Some(ServicePool::new(config.workers, config.queue))),
            fleet: crate::fleet::FleetJobs::default(),
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            config,
        });
        Ok(Server {
            listener,
            addr,
            inner,
        })
    }

    /// The bound address (reports the OS-assigned port under `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared metrics handle (for the load generator's summary).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// Serves until `POST /shutdown` or SIGTERM, then drains: the
    /// listener stops accepting, queued jobs run to completion, in-flight
    /// responses are written, and only then does this return.
    pub fn run(self) {
        self.listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        loop {
            if self.inner.draining.load(Ordering::SeqCst) || signal::shutdown_requested() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let inner = Arc::clone(&self.inner);
                    // The cap counts accepted-and-unfinished connections;
                    // over it we answer 503 inline rather than spawn.
                    if inner.active.load(Ordering::SeqCst) >= inner.config.max_connections {
                        bump(&inner.metrics.unavailable);
                        let mut stream = stream;
                        Response::new(503)
                            .header("Retry-After", "1")
                            .json(error_body("server", "connection limit reached"))
                            .send(&mut stream);
                        continue;
                    }
                    inner.active.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        handle_connection(&inner, stream);
                        inner.active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                // The poll interval bounds both shutdown-flag latency and
                // the accept delay a fresh connection can see; 500µs keeps
                // cache-hit latency dominated by real work, not polling.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(_) => std::thread::sleep(Duration::from_micros(500)),
            }
        }
        // Drain: stop accepting (listener drops at end of scope), let
        // every queued simulation finish so no flight is left dangling,
        // then wait for handler threads to write their responses.
        if let Some(pool) = self
            .inner
            .pool
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
        {
            pool.shutdown();
        }
        let drain_start = Instant::now();
        while self.inner.active.load(Ordering::SeqCst) > 0
            && drain_start.elapsed() < Duration::from_secs(10)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Renders the standard structured error body.
pub(crate) fn error_body(field: &str, detail: &str) -> Vec<u8> {
    Json::obj(vec![(
        "error",
        Json::obj(vec![
            ("field", Json::str(field)),
            ("detail", Json::str(detail)),
        ]),
    )])
    .render()
    .into_bytes()
}

fn bad_request_response(err: &BadRequest) -> Response {
    Response::new(400).json(error_body(err.field, &err.detail))
}

fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    let request = match read_request(
        &mut stream,
        inner.config.read_deadline,
        inner.config.max_body,
    ) {
        Ok(req) => req,
        Err(RecvError::Closed) => return,
        Err(RecvError::Io(_)) => return,
        Err(RecvError::Timeout) => {
            bump(&inner.metrics.timeouts);
            Response::new(408)
                .json(error_body("request", "read deadline exceeded"))
                .send(&mut stream);
            return;
        }
        Err(RecvError::TooLarge) => {
            bump(&inner.metrics.too_large);
            Response::new(413)
                .json(error_body("body", "request exceeds size limit"))
                .send(&mut stream);
            crate::http::drain_input(&mut stream, 1024 * 1024);
            return;
        }
        Err(RecvError::Malformed(reason)) => {
            bump(&inner.metrics.bad_request);
            Response::new(400)
                .json(error_body("request", reason))
                .send(&mut stream);
            crate::http::drain_input(&mut stream, 64 * 1024);
            return;
        }
    };
    bump(&inner.metrics.requests);
    let response = route(inner, &request);
    match response.status() {
        200 => bump(&inner.metrics.ok),
        400 => bump(&inner.metrics.bad_request),
        404 | 405 => bump(&inner.metrics.not_found),
        413 => bump(&inner.metrics.too_large),
        429 => bump(&inner.metrics.rejected),
        500 => bump(&inner.metrics.failures),
        503 => bump(&inner.metrics.unavailable),
        _ => {}
    }
    response.send(&mut stream);
    // /shutdown flips the drain flag only after its 200 is on the wire.
    if request.method == "POST" && request.path == "/shutdown" {
        inner.draining.store(true, Ordering::SeqCst);
    }
}

fn route(inner: &Arc<Inner>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::new(200).text("ok\n"),
        ("GET", "/metrics") => {
            let depth = inner
                .pool
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .as_ref()
                .map(|p| p.queue_depth())
                .unwrap_or(0);
            let body = inner.metrics.render(depth, inner.cache.len());
            Response::new(200).text(body)
        }
        ("GET", "/v1/kernels") => kernels_response(),
        ("POST", "/v1/run") => handle_run(inner, &request.body),
        ("POST", "/v1/sweep") => handle_sweep(inner, &request.body),
        ("POST", "/v1/fleet") => crate::fleet::handle_post(inner, &request.body),
        ("GET", path)
            if path
                .strip_prefix("/v1/fleet/")
                .is_some_and(|id| !id.is_empty()) =>
        {
            crate::fleet::handle_get(inner, path.strip_prefix("/v1/fleet/").unwrap())
        }
        ("POST", "/shutdown") => Response::new(200).text("draining\n"),
        ("GET", "/v1/run")
        | ("GET", "/v1/sweep")
        | ("GET", "/v1/fleet")
        | ("POST", "/v1/kernels") => {
            Response::new(405).json(error_body("method", "method not allowed on this route"))
        }
        _ => Response::new(404).json(error_body("path", "no such route")),
    }
}

fn kernels_response() -> Response {
    let kernels: Vec<Json> = KernelId::ALL
        .iter()
        .map(|&id| {
            let (w, h) = nvp_repro::dims(id, 12);
            Json::obj(vec![
                ("name", Json::str(id.name())),
                ("default_width", Json::Num(w as f64)),
                ("default_height", Json::Num(h as f64)),
            ])
        })
        .collect();
    let body = Json::obj(vec![("kernels", Json::Arr(kernels))]).render();
    Response::new(200).json(body.into_bytes())
}

fn handle_run(inner: &Arc<Inner>, body: &[u8]) -> Response {
    let started = Instant::now();
    let key = match parse_run_key(body) {
        Ok(key) => key,
        Err(err) => return bad_request_response(&err),
    };
    let response = match resolve(inner, &key) {
        Ok((bytes, status)) => Response::new(200)
            .header("X-Cache", status)
            .json((*bytes).clone()),
        Err(resp) => resp,
    };
    inner
        .metrics
        .run_latency
        .record_us(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    response
}

fn parse_run_key(body: &[u8]) -> Result<SimKey, BadRequest> {
    let text =
        std::str::from_utf8(body).map_err(|_| BadRequest::new("body", "body is not UTF-8"))?;
    let json = Json::parse(text).map_err(|e| BadRequest::new("body", e.to_string()))?;
    SimKey::from_json(&json)
}

/// Resolves a key to its rendered body: cache hit, coalesce onto an
/// in-flight computation, or become the leader and go through admission.
fn resolve(inner: &Arc<Inner>, key: &SimKey) -> Result<(Arc<Vec<u8>>, &'static str), Response> {
    match inner.cache.lookup(&key.canonical()) {
        Lookup::Hit(bytes) => {
            bump(&inner.metrics.cache_hits);
            Ok((bytes, "hit"))
        }
        Lookup::Join(flight) => {
            bump(&inner.metrics.coalesced);
            flight
                .wait()
                .map(|bytes| (bytes, "coalesced"))
                .map_err(flight_error_response)
        }
        Lookup::Miss(token) => {
            bump(&inner.metrics.cache_misses);
            let flight = token.flight();
            admit(inner, key.clone(), token)?;
            flight
                .wait()
                .map(|bytes| (bytes, "miss"))
                .map_err(flight_error_response)
        }
    }
}

fn flight_error_response(err: FlightError) -> Response {
    match err {
        FlightError::Rejected => Response::new(429)
            .header("Retry-After", "1")
            .json(error_body("queue", "simulation queue is full")),
        FlightError::Failed => Response::new(500).json(error_body("worker", "simulation failed")),
    }
}

/// Submits the leader's computation to the bounded pool. A full queue
/// drops the job unexecuted; the token's drop then publishes
/// `Rejected`, so every joiner of this flight observes the same 429.
fn admit(
    inner: &Arc<Inner>,
    key: SimKey,
    mut token: crate::cache::LeaderToken,
) -> Result<(), Response> {
    token.fail_with(FlightError::Rejected);
    let job_inner = Arc::clone(inner);
    let submitted = {
        let pool = inner.pool.lock().unwrap_or_else(|p| p.into_inner());
        let Some(pool) = pool.as_ref() else {
            return Err(Response::new(503)
                .header("Retry-After", "1")
                .json(error_body("server", "shutting down")));
        };
        pool.try_submit(move || {
            // Once running, an unfinished token means a panic, not a
            // rejection — joiners should see 500, not 429.
            token.fail_with(FlightError::Failed);
            let body = render_run_body(&job_inner, &key);
            token.complete(Arc::new(body));
        })
    };
    submitted.map_err(|_full| {
        // The closure (and with it the token) was dropped by the failed
        // submit; joiners have already been released with `Rejected`.
        Response::new(429)
            .header("Retry-After", "1")
            .json(error_body("queue", "simulation queue is full"))
    })
}

/// Executes the simulation for `key` and renders the response body.
/// This is the only place bodies are rendered, which is what makes the
/// cached and computed paths byte-identical by construction.
fn render_run_body(inner: &Arc<Inner>, key: &SimKey) -> Vec<u8> {
    bump(&inner.metrics.simulations);
    bump(match key.engine {
        nvp_sim::ExecEngine::Step => &inner.metrics.runs_step,
        nvp_sim::ExecEngine::BlockBudget => &inner.metrics.runs_block,
        nvp_sim::ExecEngine::Compiled => &inner.metrics.runs_compiled,
    });
    let request = key.run_request();
    let mut counters = CounterSink::new();
    let (report, trace_jsonl) = if key.trace {
        let mut jsonl = JsonlBufSink::new();
        let mut tee = TeeSink {
            a: &mut jsonl,
            b: &mut counters,
        };
        let report = nvp_repro::catalog::simulate_traced(&request, &mut tee);
        (report, Some(jsonl.into_string()))
    } else {
        let report = nvp_repro::catalog::simulate_traced(&request, &mut counters);
        (report, None)
    };
    inner.metrics.absorb_summary(&counters.summary);
    render_report(key, &report, trace_jsonl.as_deref()).into_bytes()
}

/// Renders one run's response document. Pure function of its inputs —
/// given PR 4's byte-deterministic reports, equal keys render equal
/// bodies on every machine.
pub(crate) fn render_report(key: &SimKey, report: &RunReport, trace: Option<&str>) -> String {
    let num = |v: u64| Json::Num(v as f64);
    let mut fields = vec![
        ("key", Json::str(key.canonical())),
        ("kernel", Json::str(key.kernel.name())),
        ("engine", Json::str(crate::key::engine_tag(key.engine))),
        (
            "report",
            Json::obj(vec![
                ("forward_progress", num(report.forward_progress)),
                ("instructions_retired", num(report.instructions_retired)),
                ("backups", num(report.backups)),
                ("restores", num(report.restores)),
                ("on_ticks", num(report.on_ticks)),
                ("total_ticks", num(report.total_ticks)),
                ("frames_committed", num(report.frames_committed)),
                ("incidental_frames", num(report.incidental_frames)),
                ("frames_abandoned", num(report.frames_abandoned)),
                ("merges", num(report.merges)),
                (
                    "retention_failures",
                    Json::Arr(report.retention_failures.iter().map(|&v| num(v)).collect()),
                ),
                (
                    "bit_utilization",
                    Json::Arr(report.bit_utilization.iter().map(|&v| num(v)).collect()),
                ),
                (
                    "energy_nj",
                    Json::obj(vec![
                        ("income", Json::Num(report.energy_income.as_nj())),
                        ("compute", Json::Num(report.energy_compute.as_nj())),
                        ("backup", Json::Num(report.energy_backup.as_nj())),
                        (
                            "backup_saved",
                            Json::Num(report.energy_backup_saved.as_nj()),
                        ),
                        ("restore", Json::Num(report.energy_restore.as_nj())),
                    ]),
                ),
            ]),
        ),
    ];
    if let Some(jsonl) = trace {
        let events: Vec<Json> = jsonl
            .lines()
            .map(|line| Json::parse(line).expect("trace lines are valid JSON"))
            .collect();
        fields.push(("trace_events", Json::Num(events.len() as f64)));
        fields.push(("trace", Json::Arr(events)));
    }
    Json::obj(fields).render()
}

fn handle_sweep(inner: &Arc<Inner>, body: &[u8]) -> Response {
    let spec = match parse_sweep(body) {
        Ok(spec) => spec,
        Err(err) => return bad_request_response(&err),
    };
    // Resolve every cell through the shared run cache: hits are free,
    // duplicates coalesce, and the misses travel as ONE pool job so a
    // sweep occupies a single admission slot.
    let mut waits: Vec<crate::cache::Lookup> = Vec::with_capacity(spec.cells.len());
    let mut pending: Vec<(SimKey, crate::cache::LeaderToken)> = Vec::new();
    for cell in &spec.cells {
        match inner.cache.lookup(&cell.canonical()) {
            Lookup::Hit(bytes) => {
                bump(&inner.metrics.cache_hits);
                waits.push(Lookup::Hit(bytes));
            }
            Lookup::Join(flight) => {
                bump(&inner.metrics.coalesced);
                waits.push(Lookup::Join(flight));
            }
            Lookup::Miss(mut token) => {
                bump(&inner.metrics.cache_misses);
                token.fail_with(FlightError::Rejected);
                waits.push(Lookup::Join(token.flight()));
                pending.push((cell.clone(), token));
            }
        }
    }
    if !pending.is_empty() {
        let job_inner = Arc::clone(inner);
        let submitted = {
            let pool = inner.pool.lock().unwrap_or_else(|p| p.into_inner());
            let Some(pool) = pool.as_ref() else {
                return Response::new(503)
                    .header("Retry-After", "1")
                    .json(error_body("server", "shutting down"));
            };
            pool.try_submit(move || {
                for (key, mut token) in pending {
                    token.fail_with(FlightError::Failed);
                    let body = render_run_body(&job_inner, &key);
                    token.complete(Arc::new(body));
                }
            })
        };
        if submitted.is_err() {
            return Response::new(429)
                .header("Retry-After", "1")
                .json(error_body("queue", "simulation queue is full"));
        }
    }
    // Splice the raw cell bodies — each already a rendered JSON object —
    // into the envelope, preserving per-cell byte identity with /v1/run.
    let mut out = String::from("{\"cells\":[");
    for (i, wait) in waits.iter().enumerate() {
        let bytes = match wait {
            Lookup::Hit(bytes) => Arc::clone(bytes),
            Lookup::Join(flight) => match flight.wait() {
                Ok(bytes) => bytes,
                Err(err) => return flight_error_response(err),
            },
            Lookup::Miss(_) => unreachable!("misses were converted to joins"),
        };
        if i > 0 {
            out.push(',');
        }
        out.push_str(std::str::from_utf8(&bytes).expect("bodies are UTF-8"));
    }
    out.push_str("]}");
    Response::new(200).json(out.into_bytes())
}

fn parse_sweep(body: &[u8]) -> Result<SweepSpec, BadRequest> {
    let text =
        std::str::from_utf8(body).map_err(|_| BadRequest::new("body", "body is not UTF-8"))?;
    let json = Json::parse(text).map_err(|e| BadRequest::new("body", e.to_string()))?;
    SweepSpec::from_json(&json)
}
