//! Fleet jobs over HTTP: `POST /v1/fleet` and `GET /v1/fleet/{id}`.
//!
//! A fleet is far too large to simulate inside one request/response
//! exchange, so the service runs it as an *asynchronous job*. `POST
//! /v1/fleet` canonicalizes the body into a [`ScenarioSpec`] (the same
//! parser the `nvp-fleet` CLI uses, so the canonical text — and with it
//! the content-addressed job id — is spelled identically in both
//! front-ends), registers the job under `spec.job_id()`, and occupies
//! exactly **one** admission slot on the shared [`ServicePool`] for the
//! whole run. Posting a spec that hashes to an already-registered job
//! joins that job instead of re-running it; underneath, the process-wide
//! cell cache in `nvp-fleet` additionally lets *different* overlapping
//! fleets share per-cell simulation work.
//!
//! `GET /v1/fleet/{id}` polls: while the job is running it answers a
//! small progress document (chunks folded, devices folded, distinct
//! cells) with `X-Fleet-State: running`; once complete it serves the raw
//! aggregate report — byte-identical to what `nvp-fleet run` prints for
//! the same spec, because both are `FleetAggregate::render_report` over
//! the same deterministic fold.

use crate::http::Response;
use crate::json::Json;
use crate::key::BadRequest;
use crate::metrics::{bump, Metrics};
use crate::server::{error_body, Inner};
use nvp_fleet::{run_chunks, FleetAggregate, RunOptions, ScenarioSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Worker-thread cap for one fleet job's internal pool. Deliberately
/// small: fleet jobs are throughput work sharing a host with the
/// latency-sensitive `/v1/run` path.
const MAX_FLEET_WORKERS: usize = 16;

/// One registered fleet job. Progress fields are plain gauges written by
/// the worker and read by pollers; the terminal state (report bytes or
/// failure) lives behind the mutex.
pub(crate) struct FleetJob {
    /// Content-addressed id (`ScenarioSpec::job_id`).
    id: String,
    devices: u64,
    chunks: u64,
    chunks_done: AtomicU64,
    devices_done: AtomicU64,
    distinct_cells: AtomicU64,
    state: Mutex<JobState>,
}

enum JobState {
    Running,
    Done(Arc<Vec<u8>>),
    Failed(String),
}

/// The job registry: content-addressed, insert-only for the lifetime of
/// the process (fleet reports are small; a fleet that was worth running
/// is worth keeping addressable).
#[derive(Default)]
pub(crate) struct FleetJobs {
    jobs: Mutex<BTreeMap<String, Arc<FleetJob>>>,
}

impl FleetJobs {
    fn get(&self, id: &str) -> Option<Arc<FleetJob>> {
        self.jobs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(id)
            .cloned()
    }
}

/// Translates the request body into spec text for [`ScenarioSpec::parse`].
///
/// The JSON is a thin skin over the spec grammar: numeric fields map to
/// `key = value` lines, axis arrays map to comma-joined weighted lists
/// (entries are strings like `"sobel*3"`, or bare numbers for the
/// capacitor axis). Going *through the text grammar* — rather than
/// building a `ScenarioSpec` directly — is what guarantees the service
/// and the CLI canonicalize identically.
fn spec_text_from_json(json: &Json) -> Result<String, BadRequest> {
    const NUM_KEYS: [&str; 7] = ["devices", "chunk", "seed", "img", "frames", "ms", "members"];
    const AXIS_KEYS: [&str; 7] = [
        "kernels", "profiles", "caps_nj", "caps_uj", "scopes", "modes", "engines",
    ];
    let Json::Obj(fields) = json else {
        return Err(BadRequest::new("body", "fleet request must be an object"));
    };
    for (key, _) in fields {
        let known = NUM_KEYS.contains(&key.as_str())
            || AXIS_KEYS.contains(&key.as_str())
            || key == "seconds"
            || key == "jobs";
        if !known {
            return Err(BadRequest::new("body", format!("unknown field '{key}'")));
        }
    }
    let mut text = String::from("fleet-spec-v1\n");
    for key in NUM_KEYS {
        if let Some(value) = json.get(key) {
            let n = value
                .as_u64()
                .ok_or_else(|| BadRequest::new("spec", format!("'{key}' must be an integer")))?;
            writeln!(text, "{key} = {n}").expect("String writes are infallible");
        }
    }
    if let Some(value) = json.get("seconds") {
        let s = value
            .as_f64()
            .filter(|s| s.is_finite() && *s > 0.0)
            .ok_or_else(|| BadRequest::new("spec", "'seconds' must be a positive number"))?;
        writeln!(text, "seconds = {s}").expect("String writes are infallible");
    }
    for key in AXIS_KEYS {
        if let Some(value) = json.get(key) {
            let arr = value
                .as_array()
                .ok_or_else(|| BadRequest::new("spec", format!("'{key}' must be an array")))?;
            let mut entries = Vec::with_capacity(arr.len());
            for item in arr {
                match item {
                    Json::Str(s) => entries.push(s.clone()),
                    Json::Num(n) if n.is_finite() => entries.push(format!("{n}")),
                    _ => {
                        return Err(BadRequest::new(
                            "spec",
                            format!("'{key}' entries must be strings or numbers"),
                        ))
                    }
                }
            }
            writeln!(text, "{key} = {}", entries.join(", ")).expect("String writes are infallible");
        }
    }
    Ok(text)
}

fn parse_fleet_request(body: &[u8]) -> Result<(ScenarioSpec, usize), BadRequest> {
    let text =
        std::str::from_utf8(body).map_err(|_| BadRequest::new("body", "body is not UTF-8"))?;
    let json = Json::parse(text).map_err(|e| BadRequest::new("body", e.to_string()))?;
    let spec_text = spec_text_from_json(&json)?;
    let spec =
        ScenarioSpec::parse(&spec_text).map_err(|e| BadRequest::new("spec", e.to_string()))?;
    // Worker count is an execution knob, not population identity: it is
    // deliberately outside the spec text so it cannot perturb the job id
    // (the report is byte-identical for any value).
    let jobs = match json.get("jobs") {
        None => 1,
        Some(value) => value
            .as_u64()
            .map(|j| j as usize)
            .filter(|j| (1..=MAX_FLEET_WORKERS).contains(j))
            .ok_or_else(|| {
                BadRequest::new("jobs", format!("'jobs' must be 1..={MAX_FLEET_WORKERS}"))
            })?,
    };
    Ok((spec, jobs))
}

fn state_tag(state: &JobState) -> &'static str {
    match state {
        JobState::Running => "running",
        JobState::Done(_) => "done",
        JobState::Failed(_) => "failed",
    }
}

fn job_descriptor(job: &FleetJob, state: &'static str) -> Vec<u8> {
    let num = |v: u64| Json::Num(v as f64);
    Json::obj(vec![
        ("job", Json::str(job.id.clone())),
        ("state", Json::str(state)),
        ("devices", num(job.devices)),
        ("chunks", num(job.chunks)),
        ("poll", Json::str(format!("/v1/fleet/{}", job.id))),
    ])
    .render()
    .into_bytes()
}

/// `POST /v1/fleet`.
pub(crate) fn handle_post(inner: &Arc<Inner>, body: &[u8]) -> Response {
    let (spec, workers) = match parse_fleet_request(body) {
        Ok(parsed) => parsed,
        Err(err) => return Response::new(400).json(error_body(err.field, &err.detail)),
    };
    let id = spec.job_id();
    let job = Arc::new(FleetJob {
        id: id.clone(),
        devices: spec.devices,
        chunks: spec.chunks(),
        chunks_done: AtomicU64::new(0),
        devices_done: AtomicU64::new(0),
        distinct_cells: AtomicU64::new(0),
        state: Mutex::new(JobState::Running),
    });
    {
        let mut registry = inner.fleet.jobs.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(existing) = registry.get(&id) {
            // Content-address dedup: same canonical spec, same job. The
            // poster joins whatever state the job has already reached.
            bump(&inner.metrics.fleet_deduped);
            let state = existing.state.lock().unwrap_or_else(|p| p.into_inner());
            let tag = state_tag(&state);
            return Response::new(200)
                .header("X-Fleet-State", tag)
                .json(job_descriptor(existing, tag));
        }
        registry.insert(id.clone(), Arc::clone(&job));
    }
    let submitted = {
        let pool = inner.pool.lock().unwrap_or_else(|p| p.into_inner());
        let Some(pool) = pool.as_ref() else {
            remove_job(inner, &id);
            return Response::new(503)
                .header("Retry-After", "1")
                .json(error_body("server", "shutting down"));
        };
        let worker_job = Arc::clone(&job);
        let worker_metrics = Arc::clone(&inner.metrics);
        pool.try_submit(move || run_job(worker_job, worker_metrics, spec, workers))
    };
    if submitted.is_err() {
        remove_job(inner, &id);
        return Response::new(429)
            .header("Retry-After", "1")
            .json(error_body("queue", "simulation queue is full"));
    }
    bump(&inner.metrics.fleet_jobs);
    Response::new(200)
        .header("X-Fleet-State", "running")
        .json(job_descriptor(&job, "running"))
}

fn remove_job(inner: &Arc<Inner>, id: &str) {
    inner
        .fleet
        .jobs
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(id);
}

/// Executes one fleet job on a pool worker. The guard keeps the in-flight
/// gauge and the terminal state honest even if the engine panics.
fn run_job(job: Arc<FleetJob>, metrics: Arc<Metrics>, spec: ScenarioSpec, workers: usize) {
    struct Guard {
        job: Arc<FleetJob>,
        metrics: Arc<Metrics>,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            self.metrics
                .fleet_chunks_in_flight
                .fetch_sub(1, Ordering::Relaxed);
            let mut state = self.job.state.lock().unwrap_or_else(|p| p.into_inner());
            if matches!(*state, JobState::Running) {
                *state = JobState::Failed("fleet worker panicked".into());
                bump(&self.metrics.fleet_failed);
            }
        }
    }
    metrics
        .fleet_chunks_in_flight
        .fetch_add(1, Ordering::Relaxed);
    let guard = Guard {
        job: Arc::clone(&job),
        metrics: Arc::clone(&metrics),
    };
    let mut agg = FleetAggregate::new(spec);
    let result = run_chunks(
        &mut agg,
        RunOptions {
            jobs: workers,
            stop_after_chunks: None,
        },
        |p| {
            job.chunks_done.store(p.chunks_done, Ordering::Relaxed);
            job.devices_done.store(p.devices_done, Ordering::Relaxed);
            job.distinct_cells
                .store(p.distinct_cells, Ordering::Relaxed);
            bump(&metrics.fleet_chunks_done);
        },
    );
    let mut state = guard.job.state.lock().unwrap_or_else(|p| p.into_inner());
    match result {
        Ok(_) => {
            *state = JobState::Done(Arc::new(agg.render_report().into_bytes()));
            bump(&guard.metrics.fleet_done);
        }
        Err(e) => {
            *state = JobState::Failed(e.to_string());
            bump(&guard.metrics.fleet_failed);
        }
    }
}

/// `GET /v1/fleet/{id}`.
pub(crate) fn handle_get(inner: &Arc<Inner>, id: &str) -> Response {
    let Some(job) = inner.fleet.get(id) else {
        return Response::new(404).json(error_body("job", "no such fleet job"));
    };
    let state = job.state.lock().unwrap_or_else(|p| p.into_inner());
    match &*state {
        JobState::Done(bytes) => Response::new(200)
            .header("X-Fleet-State", "done")
            .json((**bytes).clone()),
        JobState::Failed(detail) => Response::new(500)
            .header("X-Fleet-State", "failed")
            .json(error_body("fleet", detail)),
        JobState::Running => {
            let num = |v: u64| Json::Num(v as f64);
            let body = Json::obj(vec![
                ("job", Json::str(job.id.clone())),
                ("state", Json::str("running")),
                ("chunks_done", num(job.chunks_done.load(Ordering::Relaxed))),
                ("chunks", num(job.chunks)),
                (
                    "devices_done",
                    num(job.devices_done.load(Ordering::Relaxed)),
                ),
                ("devices", num(job.devices)),
                (
                    "distinct_cells",
                    num(job.distinct_cells.load(Ordering::Relaxed)),
                ),
            ]);
            Response::new(200)
                .header("X-Fleet-State", "running")
                .json(body.render().into_bytes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_text_round_trips_through_the_cli_grammar() {
        let json = Json::parse(
            r#"{"devices":1000,"chunk":256,"ms":150,"img":8,"frames":1,
                "kernels":["sobel*3","median"],"caps_nj":[2500,3500],
                "modes":["precise","fixed:4"],"jobs":2}"#,
        )
        .unwrap();
        let text = spec_text_from_json(&json).unwrap();
        let spec = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(spec.devices, 1000);
        assert_eq!(spec.kernels.len(), 2);
        assert_eq!(spec.kernels[0].weight, 3);
        assert_eq!(spec.caps_nj.len(), 2);
        // The id must equal what the CLI derives from equivalent text.
        let cli = ScenarioSpec::parse(
            "fleet-spec-v1\ndevices = 1000\nchunk = 256\nms = 150\nimg = 8\nframes = 1\n\
             kernels = sobel*3, median\ncaps_nj = 2500, 3500\nmodes = precise, fixed:4\n",
        )
        .unwrap();
        assert_eq!(spec.job_id(), cli.job_id());
    }

    #[test]
    fn jobs_field_is_outside_the_content_address() {
        let a = parse_fleet_request(br#"{"devices":100,"ms":150,"jobs":1}"#).unwrap();
        let b = parse_fleet_request(br#"{"devices":100,"ms":150,"jobs":4}"#).unwrap();
        assert_eq!(a.0.job_id(), b.0.job_id());
        assert_eq!(a.1, 1);
        assert_eq!(b.1, 4);
    }

    #[test]
    fn unknown_fields_and_bad_axes_are_rejected() {
        assert_eq!(
            parse_fleet_request(br#"{"devices":100,"kernel":"sobel"}"#)
                .unwrap_err()
                .field,
            "body"
        );
        assert_eq!(
            parse_fleet_request(br#"{"devices":100,"kernels":"sobel"}"#)
                .unwrap_err()
                .field,
            "spec"
        );
        assert_eq!(
            parse_fleet_request(br#"{"devices":100,"jobs":0}"#)
                .unwrap_err()
                .field,
            "jobs"
        );
        // Spec-level validation errors surface with their grammar detail.
        let err = parse_fleet_request(br#"{"devices":0}"#).unwrap_err();
        assert_eq!(err.field, "spec");
        assert!(err.detail.contains("devices"), "{}", err.detail);
    }
}
