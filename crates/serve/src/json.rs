//! A small hand-rolled JSON tree: parse, render, and typed accessors.
//!
//! `nvp-trace` carries a *flat* single-object JSONL codec tuned for trace
//! lines; request bodies need one level more (nested mode objects, arrays
//! of kernels), so the service has its own minimal recursive-descent
//! parser. Same ground rules as the trace codec: numbers are finite `f64`
//! with shortest-round-trip rendering and an integer fast path, strings
//! use the standard escapes, and nothing outside the JSON the service
//! actually speaks (no surrogate-pair pedantry beyond `\u` code points).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (rendering is canonical
    /// for a given construction order).
    Obj(Vec<(String, Json)>),
}

/// Parse failure with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Nesting limit: service payloads are two levels deep; anything deeper is
/// hostile or confused.
const MAX_DEPTH: usize = 16;

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new(format!("trailing garbage at byte {pos}")));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

/// Writes a number with the trace codec's conventions: integers without a
/// fractional part, everything else shortest-round-trip.
fn write_num(v: f64, out: &mut String) {
    debug_assert!(v.is_finite(), "JSON numbers must be finite");
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::new("nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(c) => Err(JsonError::new(format!(
            "unexpected byte '{}' at {pos}",
            *c as char
        ))),
        None => Err(JsonError::new("unexpected end of input")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::new(format!("bad literal at byte {pos}")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let tok = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number token");
    let n: f64 = tok
        .parse()
        .map_err(|_| JsonError::new(format!("bad number '{tok}'")))?;
    if !n.is_finite() {
        return Err(JsonError::new(format!("non-finite number '{tok}'")));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::new(format!("bad \\u escape '{hex}'")))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| JsonError::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    other => {
                        return Err(JsonError::new(format!("bad escape {other:?}")));
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte sequences pass
                // through untouched).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err(JsonError::new("unterminated string")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::new(format!("expected ':' at byte {pos}")));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => {
                return Err(JsonError::new(format!(
                    "expected ',' or '}}' at byte {pos}"
                )))
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::new(format!("expected ',' or ']' at byte {pos}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let text = r#"{"kernel":"sobel","img":12,"mode":{"fixed":4},"list":[1,2.5,true,null,"x"]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("kernel").and_then(Json::as_str), Some("sobel"));
        assert_eq!(v.get("img").and_then(Json::as_u64), Some(12));
        assert_eq!(
            v.get("mode")
                .and_then(|m| m.get("fixed"))
                .and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(v.render(), text);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1}x",
            "nul",
            "{\"a\":1e999}",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\u{1}π".to_string());
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        assert_eq!(
            Json::parse(r#""A\t/""#).unwrap(),
            Json::Str("A\t/".to_string())
        );
    }

    #[test]
    fn number_rendering_matches_trace_codec() {
        assert_eq!(Json::Num(4.0).render(), "4");
        assert_eq!(Json::Num(-0.5).render(), "-0.5");
        let x = 0.1 + 0.2;
        match Json::parse(&Json::Num(x).render()).unwrap() {
            Json::Num(back) => assert_eq!(back.to_bits(), x.to_bits()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_array).unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }
}
