//! Service-level metrics: request counters, a latency histogram, and a
//! process-wide fold of every served run's [`TraceSummary`].
//!
//! Counters are plain relaxed atomics — `/metrics` is a monitoring
//! endpoint, not a ledger, and torn cross-counter reads are acceptable.
//! Latency lands in a log2-microsecond histogram, from which p50/p99 are
//! estimated as bucket upper bounds (an overestimate of at most 2×,
//! which is the honest resolution of a log2 histogram).
//!
//! Every simulation the service executes runs under a per-run
//! `CounterSink`; the resulting [`TraceSummary`] is merged here under a
//! mutex so `/metrics` can report simulator-level totals (backups,
//! restores, energy ledger) alongside HTTP-level ones.

use nvp_trace::TraceSummary;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log2 latency buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended.
const LAT_BUCKETS: usize = 32;

/// A log2-bucketed latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LAT_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record_us(&self, us: u64) {
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(LAT_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The upper bound of the bucket containing quantile `q` (0..=1), in
    /// microseconds. `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        Some(u64::MAX)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / count as f64
    }
}

/// All counters the service exports on `/metrics`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total HTTP requests accepted for parsing.
    pub requests: AtomicU64,
    /// Responses by coarse class.
    pub ok: AtomicU64,
    /// 400s: malformed JSON or invalid fields.
    pub bad_request: AtomicU64,
    /// 404s: unknown route.
    pub not_found: AtomicU64,
    /// 413s: body over the configured limit.
    pub too_large: AtomicU64,
    /// 429s: admission-control rejections (queue full).
    pub rejected: AtomicU64,
    /// 408s: slow clients cut off by the read deadline.
    pub timeouts: AtomicU64,
    /// 500s: worker failures.
    pub failures: AtomicU64,
    /// 503s: connection cap or shutting down.
    pub unavailable: AtomicU64,
    /// Result-cache hits (body served from cache).
    pub cache_hits: AtomicU64,
    /// Result-cache misses (a simulation was scheduled).
    pub cache_misses: AtomicU64,
    /// Requests that coalesced onto another request's in-flight simulation.
    pub coalesced: AtomicU64,
    /// Simulations actually executed by the pool.
    pub simulations: AtomicU64,
    /// Executed simulations that ran on the step engine.
    pub runs_step: AtomicU64,
    /// Executed simulations that ran on the block-budget engine.
    pub runs_block: AtomicU64,
    /// Executed simulations that ran on the compiled engine.
    pub runs_compiled: AtomicU64,
    /// Fleet jobs newly accepted by `POST /v1/fleet`.
    pub fleet_jobs: AtomicU64,
    /// Fleet POSTs answered by an already-registered job (same content
    /// address — the spec hashed to an existing id).
    pub fleet_deduped: AtomicU64,
    /// Fleet jobs that ran to completion.
    pub fleet_done: AtomicU64,
    /// Fleet jobs that failed (fold error or worker panic).
    pub fleet_failed: AtomicU64,
    /// Chunks folded across all fleet jobs.
    pub fleet_chunks_done: AtomicU64,
    /// Gauge: chunks being simulated right now. A job folds its chunks
    /// sequentially, so this equals the number of actively running jobs.
    pub fleet_chunks_in_flight: AtomicU64,
    /// End-to-end latency of `/v1/run` requests.
    pub run_latency: LatencyHistogram,
    /// Folded trace summaries of every simulation served.
    pub sim_totals: Mutex<TraceSummary>,
}

/// Bumps a counter by one.
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Reads a counter.
pub fn read(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

impl Metrics {
    /// Merges one simulation's trace summary into the process totals.
    pub fn absorb_summary(&self, summary: &TraceSummary) {
        self.sim_totals
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .merge(summary);
    }

    /// Renders the plain-text exposition body served on `/metrics`.
    /// One `name value` pair per line, Prometheus-style but without
    /// type annotations (the service is dependency-free, not scrapeable
    /// by contract).
    pub fn render(&self, queue_depth: usize, cache_len: usize) -> String {
        let mut out = String::with_capacity(1024);
        let mut line = |name: &str, value: String| {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        };
        for (name, counter) in [
            ("nvp_requests_total", &self.requests),
            ("nvp_responses_ok_total", &self.ok),
            ("nvp_responses_bad_request_total", &self.bad_request),
            ("nvp_responses_not_found_total", &self.not_found),
            ("nvp_responses_too_large_total", &self.too_large),
            ("nvp_responses_rejected_total", &self.rejected),
            ("nvp_responses_timeout_total", &self.timeouts),
            ("nvp_responses_failure_total", &self.failures),
            ("nvp_responses_unavailable_total", &self.unavailable),
            ("nvp_cache_hits_total", &self.cache_hits),
            ("nvp_cache_misses_total", &self.cache_misses),
            ("nvp_coalesced_total", &self.coalesced),
            ("nvp_simulations_total", &self.simulations),
            ("nvp_runs_engine_step_total", &self.runs_step),
            ("nvp_runs_engine_block_total", &self.runs_block),
            ("nvp_runs_engine_compiled_total", &self.runs_compiled),
        ] {
            line(name, read(counter).to_string());
        }
        // Superinstruction-table compilations (the `compile` phase): the
        // catalog memo makes this flat at one per kernel × dimensions, and
        // comparing it against the compiled-run count shows cache health.
        line(
            "nvp_compile_total",
            nvp_repro::catalog::compile_count().to_string(),
        );
        // Fleet jobs: how many populations the service has run, and how
        // much per-cell simulation the process-wide cell cache let
        // overlapping fleets share instead of recompute.
        for (name, counter) in [
            ("nvp_fleet_jobs_total", &self.fleet_jobs),
            ("nvp_fleet_jobs_deduped_total", &self.fleet_deduped),
            ("nvp_fleet_jobs_done_total", &self.fleet_done),
            ("nvp_fleet_jobs_failed_total", &self.fleet_failed),
            ("nvp_fleet_chunks_done_total", &self.fleet_chunks_done),
            ("nvp_fleet_chunks_in_flight", &self.fleet_chunks_in_flight),
        ] {
            line(name, read(counter).to_string());
        }
        line(
            "nvp_fleet_cells_computed_total",
            nvp_fleet::cells_computed().to_string(),
        );
        line(
            "nvp_fleet_cells_shared_total",
            nvp_fleet::cells_shared().to_string(),
        );
        line("nvp_queue_depth", queue_depth.to_string());
        line("nvp_cache_entries", cache_len.to_string());
        line(
            "nvp_run_latency_count",
            self.run_latency.count().to_string(),
        );
        line(
            "nvp_run_latency_mean_us",
            format!("{:.1}", self.run_latency.mean_us()),
        );
        line(
            "nvp_run_latency_p50_us",
            self.run_latency.quantile_us(0.50).unwrap_or(0).to_string(),
        );
        line(
            "nvp_run_latency_p99_us",
            self.run_latency.quantile_us(0.99).unwrap_or(0).to_string(),
        );
        {
            let totals = self.sim_totals.lock().unwrap_or_else(|p| p.into_inner());
            line("nvp_sim_events_total", totals.total().to_string());
            line("nvp_sim_runs_total", totals.runs.len().to_string());
            line(
                "nvp_sim_retention_failures_total",
                totals.retention_failures.to_string(),
            );
            line(
                "nvp_sim_energy_income_nj",
                format!("{:.3}", totals.ledger.income_nj),
            );
            line(
                "nvp_sim_energy_compute_nj",
                format!("{:.3}", totals.ledger.compute_nj),
            );
            line(
                "nvp_sim_energy_backup_nj",
                format!("{:.3}", totals.ledger.backup_nj),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_bucket_upper_bounds() {
        let hist = LatencyHistogram::default();
        for _ in 0..99 {
            hist.record_us(100); // bucket [64,128)
        }
        hist.record_us(1_000_000); // one outlier
        assert_eq!(hist.quantile_us(0.50), Some(128));
        assert_eq!(hist.count(), 100);
        // p99 still lands in the common bucket; p100 would catch the outlier.
        assert_eq!(hist.quantile_us(0.99), Some(128));
        assert!(hist.quantile_us(1.0).unwrap() > 1_000_000);
    }

    #[test]
    fn zero_latency_is_recorded_not_panicked() {
        let hist = LatencyHistogram::default();
        hist.record_us(0);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.quantile_us(0.5), Some(2));
    }

    #[test]
    fn render_contains_every_counter() {
        let m = Metrics::default();
        bump(&m.requests);
        bump(&m.cache_hits);
        let text = m.render(3, 7);
        assert!(text.contains("nvp_requests_total 1\n"));
        assert!(text.contains("nvp_cache_hits_total 1\n"));
        assert!(text.contains("nvp_queue_depth 3\n"));
        assert!(text.contains("nvp_cache_entries 7\n"));
        assert!(text.contains("nvp_sim_events_total 0\n"));
        assert!(text.contains("nvp_compile_total "));
    }

    #[test]
    fn per_engine_run_counters_render_independently() {
        let m = Metrics::default();
        bump(&m.runs_compiled);
        bump(&m.runs_compiled);
        bump(&m.runs_step);
        let text = m.render(0, 0);
        assert!(text.contains("nvp_runs_engine_step_total 1\n"));
        assert!(text.contains("nvp_runs_engine_block_total 0\n"));
        assert!(text.contains("nvp_runs_engine_compiled_total 2\n"));
    }
}
