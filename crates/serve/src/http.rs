//! A deliberately small HTTP/1.1 subset over `std::net::TcpStream`.
//!
//! The service speaks exactly what its clients need and nothing more:
//! one request per connection (`Connection: close` on every response),
//! `Content-Length` bodies only (no chunked transfer), headers capped at
//! 8 KiB, bodies capped by the server's configured limit, and a read
//! deadline so a slow or stalled client cannot pin a handler thread.
//!
//! Keeping the parser this narrow is what keeps the crate
//! dependency-free without turning it into a second project.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request line plus headers.
const MAX_HEAD: usize = 8 * 1024;

/// A parsed request head plus its body.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client per RFC (not normalized).
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RecvError {
    /// The client did not deliver the full request before the deadline.
    Timeout,
    /// Declared body (or the head) exceeds the configured limits.
    TooLarge,
    /// The bytes on the wire are not an HTTP/1.1 request we accept.
    Malformed(&'static str),
    /// The client closed the connection before a full request arrived.
    Closed,
    /// Transport error.
    Io(std::io::Error),
}

/// Reads one request from `stream`, enforcing `deadline` on the whole
/// read and `max_body` on the declared body length.
pub fn read_request(
    stream: &mut TcpStream,
    deadline: Duration,
    max_body: usize,
) -> Result<Request, RecvError> {
    stream
        .set_read_timeout(Some(deadline))
        .map_err(RecvError::Io)?;
    let start = std::time::Instant::now();

    // Accumulate until the blank line ending the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(RecvError::TooLarge);
        }
        if start.elapsed() >= deadline {
            return Err(RecvError::Timeout);
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if buf.is_empty() {
                    RecvError::Closed
                } else {
                    RecvError::Malformed("connection closed mid-head")
                })
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(RecvError::Timeout)
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RecvError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(RecvError::Malformed("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(RecvError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(RecvError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed("not HTTP/1.x"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: usize = 0;
    for header in lines {
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| RecvError::Malformed("unparseable Content-Length"))?;
        }
    }
    if content_length > max_body {
        return Err(RecvError::TooLarge);
    }

    // The body may already be partially (or fully) in `buf`.
    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        if start.elapsed() >= deadline {
            return Err(RecvError::Timeout);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(RecvError::Malformed("connection closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(RecvError::Timeout)
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Discards whatever the client is still sending, bounded by `max`
/// bytes and a short window. Closing a socket with unread input makes
/// the kernel send RST, which clobbers a response the client has not
/// read yet — early rejections (413, 400) must drain before closing so
/// the refusal actually arrives.
pub fn drain_input(stream: &mut TcpStream, max: usize) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut scratch = [0u8; 4096];
    let mut seen = 0usize;
    while seen < max {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => seen += n,
        }
    }
}

/// An HTTP response under construction. Always `Connection: close`.
#[derive(Debug)]
pub struct Response {
    status: u16,
    reason: &'static str,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A response with the given status code.
    pub fn new(status: u16) -> Response {
        let reason = match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        };
        Response {
            status,
            reason,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Status code of this response.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Sets a JSON body.
    pub fn json(self, body: impl Into<Vec<u8>>) -> Response {
        self.body_with("application/json", body.into())
    }

    /// Sets a plain-text body.
    pub fn text(self, body: impl Into<String>) -> Response {
        self.body_with("text/plain; charset=utf-8", body.into().into_bytes())
    }

    fn body_with(mut self, content_type: &str, body: Vec<u8>) -> Response {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body;
        self
    }

    /// Serializes head + body to wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(
            format!(
                "Content-Length: {}\r\nConnection: close\r\n\r\n",
                self.body.len()
            )
            .as_bytes(),
        );
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response and flushes. Errors are swallowed — the
    /// client may already be gone, and there is nobody left to tell.
    pub fn send(&self, stream: &mut TcpStream) {
        let _ = stream.write_all(&self.to_bytes());
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn roundtrip(raw: &[u8]) -> Result<Request, RecvError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // Keep the socket open briefly so the reader sees the data,
            // then drop (close) it.
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream, Duration::from_millis(500), 1024);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip(b"POST /v1/run?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/run");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_oversized_body_from_header_alone() {
        let err = roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert!(matches!(err, RecvError::TooLarge), "{err:?}");
    }

    #[test]
    fn rejects_non_http() {
        let err = roundtrip(b"SSH-2.0-OpenSSH\r\n\r\n").unwrap_err();
        assert!(matches!(err, RecvError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn slow_client_times_out() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Declare a body but never send it.
            s.write_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n")
                .unwrap();
            s.flush().unwrap();
            thread::sleep(Duration::from_millis(400));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_request(&mut stream, Duration::from_millis(100), 1024).unwrap_err();
        assert!(matches!(err, RecvError::Timeout), "{err:?}");
        writer.join().unwrap();
    }

    #[test]
    fn response_wire_format() {
        let bytes = Response::new(429)
            .header("Retry-After", "1")
            .json(br#"{"error":"queue full"}"#.to_vec())
            .to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }
}
