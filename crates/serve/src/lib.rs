//! nvp-serve: a dependency-free HTTP service in front of the simulator.
//!
//! PR 4 made every simulation a pure function of its request — same
//! [`RunRequest`](nvp_repro::catalog::RunRequest), same bytes out, on
//! any machine. This crate turns that property into infrastructure:
//! since results are immutable values, they can be *content-addressed*,
//! and a simulation service becomes a cache in front of a worker pool.
//!
//! The service is built entirely on `std`:
//!
//! * [`json`] — a recursive-descent JSON parser/renderer whose number
//!   formatting matches the trace codec bit-for-bit;
//! * [`key`] — request canonicalization into [`key::SimKey`]s;
//! * [`cache`] — a sharded, LRU-bounded, single-flight body cache;
//! * `fleet` — asynchronous fleet jobs (`POST /v1/fleet`, polled via
//!   `GET /v1/fleet/{id}`), content-addressed by canonical spec;
//! * [`http`] — a minimal HTTP/1.1 subset with read deadlines;
//! * [`server`] — routing, admission control, and the drain path;
//! * [`metrics`] — counters, latency quantiles, and folded trace
//!   summaries for `/metrics`;
//! * [`signal`] — SIGTERM/SIGINT → drain, without a signals crate;
//! * [`bench`] — the closed-loop load generator behind
//!   `nvp-serve bench` and `BENCH_serve.json`.
//!
//! See DESIGN.md §10 for the protocol and the byte-identity contract.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bench;
pub mod cache;
pub(crate) mod fleet;
pub mod http;
pub mod json;
pub mod key;
pub mod metrics;
pub mod server;
pub mod signal;

pub use cache::{Flight, FlightError, LeaderToken, Lookup, ResultCache};
pub use key::{BadRequest, ModeSpec, SimKey, SweepSpec};
pub use server::{Server, ServerConfig};
