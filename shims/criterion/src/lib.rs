//! Offline shim for `criterion`.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! Criterion API subset the workspace's benches use (`benchmark_group`,
//! `bench_function`, `Throughput`, the `criterion_group!`/`criterion_main!`
//! macros). It is a plain wall-clock runner: each benchmark's closure is
//! timed over a fixed iteration budget and the mean per-iteration time is
//! printed — no statistics, HTML reports, or outlier analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver passed to `bench_function` closures.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running it for a small fixed iteration budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warm-up call, then a fixed budget: enough to time heavy
        // simulation benches without Criterion's adaptive sampling.
        black_box(f());
        let iters = 3u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// A named group of benchmarks sharing throughput/timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the shim's
    /// iteration budget is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its mean per-iteration time.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / b.iters as u32
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / per_iter.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!("  {:.0} B/s", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{}: {:?}/iter{}", self.name, id, per_iter, rate);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function list (`criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` (`criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)*) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1))
            .throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn black_box_returns_value() {
        assert_eq!(black_box(42), 42);
    }
}
