//! Offline shim for `rand`.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! small API subset the workspace uses — `rngs::SmallRng`, `Rng::gen`,
//! `Rng::gen_range` and `SeedableRng::seed_from_u64` — backed by a
//! deterministic xoshiro256** generator seeded through SplitMix64 (the
//! same construction the real `SmallRng` uses on 64-bit targets).
//!
//! Streams are deterministic per seed but are **not** bit-compatible with
//! the real `rand` crate; all workspace tests assert statistical
//! properties, not exact streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A value that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as i16
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Core random-number source: 64 uniform bits per call.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable xoshiro256** generator — the shim's
    /// stand-in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bools_are_balanced() {
        let mut r = SmallRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4500..5500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.gen_range(-3i32..7);
            assert!((-3..7).contains(&v));
            let w = r.gen_range(1u8..=8);
            assert!((1..=8).contains(&w));
        }
    }
}
