//! Offline shim for `serde_derive`.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal stand-in: the `Serialize`/`Deserialize` derives expand to
//! nothing, and the sibling `serde` shim provides blanket trait impls so
//! any `T: Serialize` bound still holds. Serialization itself is not
//! implemented — the simulator never serializes, it only derives.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the `serde` shim's blanket impl already
/// covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: the `serde` shim's blanket impl already
/// covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
