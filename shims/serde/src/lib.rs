//! Offline shim for `serde`.
//!
//! The build container cannot reach crates.io, so this crate stands in for
//! the real `serde`: it re-exports no-op `Serialize`/`Deserialize` derive
//! macros and defines the two traits as markers with blanket impls. Code
//! that *derives* the traits (all this workspace does) compiles unchanged;
//! code that actually serializes would not — and none exists here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use crate::Serialize;
}
