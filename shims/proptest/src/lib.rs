//! Offline shim for `proptest`.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! subset of the proptest API the workspace uses: the [`proptest!`] macro
//! (with `name in strategy` and `name: Type` parameters and an optional
//! `#![proptest_config(..)]` header), [`prelude::any`], integer/float
//! range strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Unlike the real proptest there is **no shrinking** and no failure
//! persistence: each test simply runs `cases` deterministic random samples
//! (seeded from the test name) and panics on the first failing case,
//! printing the sampled values via the assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
pub use rand::{Rng, SeedableRng};

/// Runner configuration (`ProptestConfig` in real proptest).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG threaded through strategy sampling.
pub type TestRng = SmallRng;

/// Builds the per-test RNG from the test's name (FNV-1a over the bytes),
/// so every test explores an independent but reproducible stream.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// A source of random values of one type (`proptest::strategy::Strategy`).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical whole-domain strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary!(bool, u8, u16, u32, u64, i16, i32, i64, f32, f64);

/// The strategy returned by [`prelude::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// A vector of `len` elements sampled from `elem` (the real crate's
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` expects to find.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, ProptestConfig, Strategy};

    /// The whole-domain strategy for `T` (`proptest::prelude::any`).
    pub fn any<T: crate::Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(params) { body }` becomes a
/// `#[test]` running `cases` sampled executions of the body.
///
/// Parameters take either form `name in strategy` or `name: Type`
/// (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each property function (used by [`proptest!`]).
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $crate::__proptest_bind! { __rng; $($params)* }
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// Internal: binds one parameter list entry at a time (used by
/// [`proptest!`]).
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $v:ident in $strat:expr) => {
        let $v = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $v:ident in $strat:expr, $($rest:tt)*) => {
        let $v = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $v:ident : $t:ty) => {
        let $v: $t = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $v:ident : $t:ty, $($rest:tt)*) => {
        let $v: $t = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in -50i32..50, b in 1u8..=8) {
            prop_assert!((-50..50).contains(&v));
            prop_assert!((1..=8).contains(&b));
        }

        #[test]
        fn typed_params_sample(x: u32, y: i16) {
            let _ = (x, y);
        }

        #[test]
        fn vectors_respect_length(data in crate::collection::vec(any::<u8>(), 1..16)) {
            prop_assert!(!data.is_empty() && data.len() < 16);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_accepted(v in 0u64..10) {
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use crate::Rng;
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
